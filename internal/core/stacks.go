package core

import (
	"errors"
	"fmt"

	"repro/internal/blockmq"
	"repro/internal/fpga"
	"repro/internal/iouring"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/sim"
)

// This file holds the stack machinery shared across compositions: the
// io_uring ring set, the two ring targets (DMQ/card and software client),
// and the shell/client helpers. The layer implementations and BuildStack
// live in layers.go; the declarative specs in spec.go.

// DKInstances is the number of io_uring instances DeLiBA-K creates, each
// pinned to its own CPU core (paper §III-A: "DeLiBA-K uses 3 instances").
const DKInstances = 3

// ringEntries is the SQ depth per instance.
const ringEntries = 256

// SQ-full backoff: the application would spin on GetSQE; model the retry
// with a seeded full-jitter delay (mean sqRetryBase + sqRetrySpread/2 =
// 2µs, the old fixed retry) so contended replays are deterministic for a
// given build, including under the -parallel cell runner.
const (
	sqRetryBase   = sim.Microsecond
	sqRetrySpread = 2 * sim.Microsecond
	sqRetrySeed   = 0xDE11BA4B
)

// errIO converts a CQE result to an error.
func errIO(res int32) error {
	if res < 0 {
		return fmt.Errorf("core: I/O failed (res=%d)", res)
	}
	return nil
}

// ringSet manages the io_uring instances with per-ring completion callback
// registries and reaper procs. It is shared by every io_uring host API;
// compositions differ only in the ring Target.
type ringSet struct {
	eng       *sim.Engine
	rng       *sim.RNG
	rings     []*iouring.Ring
	callbacks []map[uint64]func(error)
	nextUD    []uint64
}

func newRingSet(tb *Testbed, spec StackSpec, target iouring.Target) (*ringSet, error) {
	rs := &ringSet{eng: tb.Eng, rng: sim.NewRNG(sqRetrySeed)}
	mode := iouring.SQPollMode
	if spec.RingInterrupt {
		mode = iouring.InterruptMode
	}
	for i := 0; i < spec.ringInstances(); i++ {
		ring, err := iouring.Setup(tb.Eng, iouring.Params{
			Entries:       uint32(spec.ringDepth()),
			Mode:          mode,
			CPU:           i,
			SyscallCost:   tb.CM.DKIOUringSyscall,
			PerSQECost:    tb.CM.DKPerSQE,
			SQPollLatency: tb.CM.DKSQPollLatency,
		}, target)
		if err != nil {
			return nil, err
		}
		rs.rings = append(rs.rings, ring)
		rs.callbacks = append(rs.callbacks, make(map[uint64]func(error)))
		rs.nextUD = append(rs.nextUD, 1)
		idx := i
		tb.Eng.Spawn(fmt.Sprintf("dk-reaper-%d", i), func(p *sim.Proc) {
			rs.reap(p, idx)
		})
	}
	return rs, nil
}

func (rs *ringSet) reap(p *sim.Proc, idx int) {
	for {
		cqe, err := rs.rings[idx].WaitCQE(p)
		if err != nil {
			return
		}
		cb := rs.callbacks[idx][cqe.UserData]
		delete(rs.callbacks[idx], cqe.UserData)
		if cb != nil {
			cb(errIO(cqe.Res))
		}
	}
}

// submit queues one SQE on the cpu's ring; if the SQ is momentarily full
// it retries after a seeded-jitter backoff.
func (rs *ringSet) submit(op OpType, pattern Pattern, off int64, n int, cpu int, done func(error)) {
	idx := cpu % len(rs.rings)
	sqe := rs.rings[idx].GetSQE()
	if sqe == nil {
		delay := sqRetryBase + sim.Duration(rs.rng.Int63n(int64(sqRetrySpread)))
		rs.eng.Schedule(delay, func() {
			rs.submit(op, pattern, off, n, cpu, done)
		})
		return
	}
	sqe.Op = iouring.OpRead
	if op == Write {
		sqe.Op = iouring.OpWrite
	}
	sqe.Off = off
	sqe.Len = uint32(n)
	sqe.BufIndex = 0 // registered buffers: the zero-copy configuration
	if pattern == Rand {
		sqe.RWFlags = blockmq.FlagRandom
	}
	ud := rs.nextUD[idx]
	rs.nextUD[idx]++
	sqe.UserData = ud
	rs.callbacks[idx][ud] = done
	if rs.rings[idx].Params().Mode != iouring.SQPollMode {
		// Without the kernel poller the application must enter; model the
		// submitting thread with a short-lived proc.
		rs.eng.Spawn("enter", func(p *sim.Proc) {
			rs.rings[idx].Submit(p)
		})
	}
}

func (rs *ringSet) close() {
	for _, r := range rs.rings {
		r.Close()
	}
}

// buildShell constructs the FPGA design bound to the pool's placement rule.
func buildShell(tb *Testbed, pool *rados.Pool, staticOnly bool) (*fpga.Shell, error) {
	ruleName := "replicated_osd"
	if pool.Kind == rados.ECPool {
		ruleName = "ec_osd"
	}
	return fpga.BuildShell(tb.Eng, fpga.ShellConfig{
		Map:        tb.Cluster.Map,
		Rule:       tb.Cluster.Map.Rule(ruleName),
		Code:       pool.Code,
		StaticOnly: staticOnly,
	})
}

// dmqTarget adapts io_uring requests into the DMQ block layer: the UIFD
// RBD driver's offset→object mapping cost is charged, then the request
// enters blk-mq (bypass) toward the card. Write-path card overhead
// (descriptor + doorbell + durability aggregation) rides on the request.
type dmqTarget struct {
	eng        *sim.Engine
	mq         *blockmq.MQ
	mapCost    sim.Duration
	writeExtra sim.Duration
	prof       *StageProfile
	// bare skips the kernel span and RBD map cost: the cacheTarget
	// wrapping this target already charged them once above the cache.
	bare bool
}

func (t *dmqTarget) Submit(req iouring.Request, complete func(res int32)) {
	op := blockmq.OpRead
	extra := sim.Duration(0)
	if req.Op == iouring.OpWrite {
		op = blockmq.OpWrite
		extra = t.writeExtra
	}
	endKernel := func() {}
	delay := extra
	if !t.bare {
		endKernel = t.prof.span(StageKernel)
		delay += t.mapCost
	}
	t.eng.Schedule(delay, func() {
		// The transport span is the below-block-layer round trip: QDMA
		// H2C, card residency, C2H. Subtract the card stages to isolate
		// the transport itself.
		endTrans := t.prof.span(StageTransport)
		length := req.Len
		t.mq.SubmitAsync(op, req.Off, int(req.Len), req.RWFlags, req.CPU, func(err error) {
			endTrans()
			endKernel()
			if err != nil {
				complete(iouring.ResEIO)
				return
			}
			complete(int32(length))
		})
	})
}

// radosTarget routes ring submissions into the software Ceph client.
type radosTarget struct {
	tb      *Testbed
	client  *rados.Client
	image   *rbd.Image
	pool    *rados.Pool
	mapCost sim.Duration
	prof    *StageProfile
	// bare skips the kernel span and RBD map cost: the cacheTarget
	// wrapping this target already charged them once above the cache.
	bare bool
}

func (t *radosTarget) Submit(req iouring.Request, complete func(res int32)) {
	t.tb.Eng.Spawn("dksw-io", func(p *sim.Proc) {
		if !t.bare {
			endKernel := t.prof.span(StageKernel)
			p.Sleep(t.mapCost)
			endKernel()
		}
		opts := rados.ReqOpts{Random: req.RWFlags&blockmq.FlagRandom != 0}
		err := t.image.VisitExtents(req.Off, int(req.Len), true, func(e rbd.Extent) error {
			endFan := t.prof.span(StageFanout)
			var operr error
			if req.Op == iouring.OpWrite {
				operr = t.client.WriteOpts(p, t.pool, e.Object, e.Off, zeros(e.Len), opts)
			} else {
				_, operr = t.client.ReadOpts(p, t.pool, e.Object, e.Off, e.Len, opts)
			}
			endFan()
			return operr
		})
		switch {
		case err == nil:
			complete(int32(req.Len))
		case errors.Is(err, rbd.ErrOutOfRange):
			complete(iouring.ResEINVAL)
		default:
			complete(iouring.ResEIO)
		}
	})
}

// newSWClient builds a rados client with software-path costs.
func newSWClient(tb *Testbed, name string) (*rados.Client, error) {
	client, err := rados.NewClient(tb.Cluster, name, tb.CM.NICBitsPerSec, tb.CM.HostStack)
	if err != nil {
		return nil, err
	}
	client.PlacementCost = tb.CM.SWPlacement
	client.ECEncodeCost = tb.CM.SWECEncode
	client.ECDecodeCost = tb.CM.SWECDecode
	client.Functional = tb.Cfg.Functional
	if tb.Res != nil {
		client.Retry = tb.Res.retryPolicy()
	}
	if tb.Cfg.SplitDomains {
		client.Split = true
		client.Eng = tb.Eng
	}
	return client, nil
}
