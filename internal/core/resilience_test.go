package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/rados"
	"repro/internal/sim"
)

// newResilientHarness builds a jitter-free testbed with the default
// resilience policy armed and a client-side Fanout bound to its shared
// counters and jitter stream.
func newResilientHarness(t testing.TB) (*Testbed, *Fanout) {
	t.Helper()
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	cfg.Resilience = DefaultResilienceConfig()
	cfg.Resilience.Seed = 1
	tbd, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	host, err := tbd.Fabric.AddHost("res-client", 10e9, cfg.CM.HostStack)
	if err != nil {
		t.Fatal(err)
	}
	return tbd, &Fanout{Cluster: tbd.Cluster, From: host, Res: tbd.Res}
}

// crossNodeObject scans for an object whose replicated acting set spans both
// server nodes, so a fault confined to the primary's node leaves a reachable
// replica.
func crossNodeObject(t *testing.T, tbd *Testbed) (string, []int) {
	t.Helper()
	c := tbd.Cluster
	for i := 0; i < 1000; i++ {
		obj := fmt.Sprintf("obj%d", i)
		acting, err := c.ActingSet(tbd.ReplPool, c.PGOf(tbd.ReplPool, obj))
		if err != nil {
			t.Fatal(err)
		}
		if len(acting) >= 2 && c.NodeOf(acting[0]) != c.NodeOf(acting[1]) {
			return obj, acting
		}
	}
	t.Fatal("no object with a cross-node acting set in 1000 candidates")
	return "", nil
}

// TestReadFailoverAfterDeadline drops every request to the primary's node:
// attempt 0 must die at its deadline and the retry must fail over to the
// replica on the other node.
func TestReadFailoverAfterDeadline(t *testing.T) {
	tbd, f := newResilientHarness(t)
	obj, acting := crossNodeObject(t, tbd)
	primaryNode := tbd.Cluster.NodeOf(acting[0])
	tbd.Fabric.SetFaultHook(func(src, dst *netsim.Host, n int) bool {
		return src == f.From && dst == primaryNode
	})
	var gotErr error
	var doneAt sim.Time
	completed := false
	tbd.Eng.Schedule(0, func() {
		f.ReadReplicatedR(tbd.ReplPool, obj, 0, 4096, rados.ReqOpts{}, func(err error) {
			gotErr, doneAt, completed = err, tbd.Eng.Now(), true
		})
	})
	tbd.Eng.Run()
	if !completed {
		t.Fatal("read never completed")
	}
	if gotErr != nil {
		t.Fatalf("read failed: %v", gotErr)
	}
	res := tbd.Res.Counters
	if res.DeadlineExceeded != 1 || res.Retries != 1 || res.Failovers != 1 {
		t.Errorf("counters = %+v, want 1 deadline, 1 retry, 1 failover", res)
	}
	if min := sim.Time(0).Add(tbd.Res.Cfg.Deadline); doneAt < min {
		t.Errorf("completed at %v, before the first deadline %v could have fired", doneAt, min)
	}
}

// TestWriteRetriesAfterCrash crashes the primary while its copy of a
// replicated write is in service: the attempt must fail with ErrOSDDown and
// the retry must commit on the surviving replica.
func TestWriteRetriesAfterCrash(t *testing.T) {
	tbd, f := newResilientHarness(t)
	obj, acting := crossNodeObject(t, tbd)
	osd := tbd.Cluster.OSDs[acting[0]]
	osd.SetSlow(500) // stretch service into the ms range so the crash lands mid-op
	var gotErr error
	completed := false
	tbd.Eng.Schedule(0, func() {
		f.WriteReplicatedR(tbd.ReplPool, obj, 0, 4096, rados.ReqOpts{}, func(err error) {
			gotErr, completed = err, true
		})
	})
	tbd.Eng.Schedule(500*sim.Microsecond, func() {
		if osd.InFlight() == 0 {
			t.Error("crash scheduled but no write was in flight on the primary")
		}
		osd.SetUp(false)
	})
	tbd.Eng.Run()
	if !completed {
		t.Fatal("write never completed")
	}
	if gotErr != nil {
		t.Fatalf("write failed after retry: %v", gotErr)
	}
	if res := tbd.Res.Counters; res.Retries != 1 || res.DeadlineExceeded != 0 {
		t.Errorf("counters = %+v, want exactly 1 retry and no deadline", res)
	}
	if osd.Crashes() != 1 {
		t.Errorf("osd crashes = %d, want 1", osd.Crashes())
	}
}

// TestDeadlineExhaustsRetries drops every message: all attempts time out and
// the op must surface ErrDeadline after MaxRetries re-issues.
func TestDeadlineExhaustsRetries(t *testing.T) {
	tbd, f := newResilientHarness(t)
	tbd.Fabric.SetFaultHook(func(src, dst *netsim.Host, n int) bool { return true })
	var gotErr error
	completed := false
	tbd.Eng.Schedule(0, func() {
		f.ReadReplicatedR(tbd.ReplPool, "obj", 0, 4096, rados.ReqOpts{}, func(err error) {
			gotErr, completed = err, true
		})
	})
	tbd.Eng.Run()
	if !completed {
		t.Fatal("read never completed")
	}
	if !errors.Is(gotErr, rados.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", gotErr)
	}
	cfg := tbd.Res.Cfg
	res := tbd.Res.Counters
	if want := uint64(cfg.MaxRetries + 1); res.DeadlineExceeded != want {
		t.Errorf("DeadlineExceeded = %d, want %d (every attempt)", res.DeadlineExceeded, want)
	}
	if res.Retries != uint64(cfg.MaxRetries) {
		t.Errorf("Retries = %d, want %d", res.Retries, cfg.MaxRetries)
	}
}

// TestECDegradedReadCounts takes one data-shard OSD down: the EC read must
// gather a parity shard instead, report needDecode, and count the degraded
// read without any retry.
func TestECDegradedReadCounts(t *testing.T) {
	tbd, f := newResilientHarness(t)
	c := tbd.Cluster
	obj := "ec-obj"
	acting, err := c.ActingSet(tbd.ECPool, c.PGOf(tbd.ECPool, obj))
	if err != nil {
		t.Fatal(err)
	}
	c.OSDs[acting[0]].SetUp(false) // rank 0 is a data shard in 4+2
	var gotErr error
	needDecode := false
	completed := false
	tbd.Eng.Schedule(0, func() {
		f.ReadECR(tbd.ECPool, obj, 0, 64<<10, rados.ReqOpts{}, func(nd bool, err error) {
			needDecode, gotErr, completed = nd, err, true
		})
	})
	tbd.Eng.Run()
	if !completed {
		t.Fatal("EC read never completed")
	}
	if gotErr != nil {
		t.Fatalf("degraded EC read failed: %v", gotErr)
	}
	if !needDecode {
		t.Error("needDecode = false with a data shard down")
	}
	if res := tbd.Res.Counters; res.DegradedReads != 1 || res.Retries != 0 {
		t.Errorf("counters = %+v, want 1 degraded read and no retries", res)
	}
}

// newSWClientHarness wires a rados.Client with the testbed's retry policy —
// the software-baseline resilience path.
func newSWClientHarness(t *testing.T) (*Testbed, *rados.Client) {
	t.Helper()
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	cfg.Resilience = DefaultResilienceConfig()
	cfg.Resilience.Seed = 1
	tbd, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := rados.NewClient(tbd.Cluster, "sw-client", cfg.CM.NICBitsPerSec, cfg.CM.HostStack)
	if err != nil {
		t.Fatal(err)
	}
	cl.Functional = false
	cl.Retry = tbd.Res.retryPolicy()
	return tbd, cl
}

// TestClientWriteRetriesAfterCrash exercises the proc-blocking software
// client: the primary crashes mid-service, the aborted attempt surfaces
// ErrOSDDown inside withRetry, and the re-issue lands on the new primary.
func TestClientWriteRetriesAfterCrash(t *testing.T) {
	tbd, cl := newSWClientHarness(t)
	obj, acting := crossNodeObject(t, tbd)
	osd := tbd.Cluster.OSDs[acting[0]]
	osd.SetSlow(500)
	var gotErr error
	completed := false
	tbd.Eng.Spawn("writer", func(p *sim.Proc) {
		gotErr = cl.Write(p, tbd.ReplPool, obj, 0, make([]byte, 4096))
		completed = true
	})
	tbd.Eng.Schedule(500*sim.Microsecond, func() { osd.SetUp(false) })
	tbd.Eng.Run()
	if !completed {
		t.Fatal("write never completed")
	}
	if gotErr != nil {
		t.Fatalf("write failed after retry: %v", gotErr)
	}
	if res := tbd.Res.Counters; res.Retries != 1 {
		t.Errorf("counters = %+v, want exactly 1 retry", res)
	}
}

// TestClientReadDeadlineFailsOver drops client requests to the primary's
// node: the software read must time out, retry against the replica on the
// other node, and count the failover.
func TestClientReadDeadlineFailsOver(t *testing.T) {
	tbd, cl := newSWClientHarness(t)
	obj, acting := crossNodeObject(t, tbd)
	primaryNode := tbd.Cluster.NodeOf(acting[0])
	tbd.Fabric.SetFaultHook(func(src, dst *netsim.Host, n int) bool {
		return src == cl.Host && dst == primaryNode
	})
	var gotErr error
	completed := false
	tbd.Eng.Spawn("reader", func(p *sim.Proc) {
		_, gotErr = cl.Read(p, tbd.ReplPool, obj, 0, 4096)
		completed = true
	})
	tbd.Eng.Run()
	if !completed {
		t.Fatal("read never completed")
	}
	if gotErr != nil {
		t.Fatalf("read failed: %v", gotErr)
	}
	res := tbd.Res.Counters
	if res.DeadlineExceeded != 1 || res.Retries != 1 || res.Failovers != 1 {
		t.Errorf("counters = %+v, want 1 deadline, 1 retry, 1 failover", res)
	}
}

// TestDoDeadline pins the synchronous helper: a healthy op completes under a
// generous deadline; with every message dropped the same op returns
// ErrDeadline after exactly d of simulated time.
func TestDoDeadline(t *testing.T) {
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	tbd, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tbd.NewStack(StackDKSW, false)
	if err != nil {
		t.Fatal(err)
	}
	tbd.Eng.Spawn("driver", func(p *sim.Proc) {
		if err := DoDeadline(p, stack, Read, Seq, 0, 4096, 0, 50*sim.Millisecond); err != nil {
			t.Errorf("healthy op under deadline: %v", err)
		}
		tbd.Fabric.SetFaultHook(func(src, dst *netsim.Host, n int) bool { return true })
		start := p.Now()
		err := DoDeadline(p, stack, Read, Seq, 0, 4096, 0, sim.Millisecond)
		if !errors.Is(err, rados.ErrDeadline) {
			t.Errorf("err = %v, want ErrDeadline", err)
		}
		if got := p.Now().Sub(start); got != sim.Millisecond {
			t.Errorf("timed out after %v, want exactly %v", got, sim.Millisecond)
		}
	})
	tbd.Eng.Run()
	stack.Close()
}
