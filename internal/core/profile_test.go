package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestStageProfileRecordsPipeline(t *testing.T) {
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := tb.EnableProfiling()
	stack, err := tb.NewStack(StackDKHW, true) // EC: exercises the encoder too
	if err != nil {
		t.Fatal(err)
	}
	tb.Eng.Spawn("io", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := Do(p, stack, Write, Rand, int64(i)*8192, 8192, 0); err != nil {
				t.Errorf("op %d: %v", i, err)
			}
		}
		for i := 0; i < 5; i++ {
			if err := Do(p, stack, Read, Rand, int64(i)*8192, 8192, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		}
	})
	tb.Eng.Run()
	stack.Close()

	for _, stage := range []string{StageHostAPI, StageKernel, StageTransport, StageAccel, StageEncode, StageFanout} {
		h := prof.Stage(stage)
		if h == nil || h.Count() == 0 {
			t.Fatalf("stage %q not recorded", stage)
		}
	}
	if got := prof.Stage(StageKernel).Count(); got != 15 {
		t.Fatalf("kernel stage ops = %d, want 15", got)
	}
	if got := prof.Stage(StageEncode).Count(); got != 10 {
		t.Fatalf("encode stage ops = %d, want 10 (writes only)", got)
	}
	// Sub-stages fit inside the round trip.
	if prof.Stage(StageAccel).Mean() >= prof.Stage(StageKernel).Mean() {
		t.Fatal("accelerator stage not smaller than the round trip")
	}
	if prof.Stage(StageFanout).Mean() >= prof.Stage(StageKernel).Mean() {
		t.Fatal("fanout stage not smaller than the round trip")
	}
	// The encoder occupies well under a microsecond per 8 kB op (Table I).
	if prof.Stage(StageEncode).Mean() > 2*sim.Microsecond {
		t.Fatalf("encoder stage mean %v too large", prof.Stage(StageEncode).Mean())
	}
	out := prof.Table().String()
	if !strings.Contains(out, StageFanout) {
		t.Fatalf("table missing stages:\n%s", out)
	}
	if len(prof.Stages()) != 6 {
		t.Fatalf("stages = %v", prof.Stages())
	}
	if got := prof.Stage(StageHostAPI).Count(); got != 15 {
		t.Fatalf("host-api stage ops = %d, want 15", got)
	}
	// The host-api span contains the kernel span, which contains transport.
	if prof.Stage(StageHostAPI).Mean() < prof.Stage(StageKernel).Mean() {
		t.Fatal("host-api round trip smaller than the kernel round trip")
	}
	if prof.Stage(StageKernel).Mean() < prof.Stage(StageTransport).Mean() {
		t.Fatal("kernel round trip smaller than the transport round trip")
	}
}

func TestStageProfileNilSafe(t *testing.T) {
	var sp *StageProfile
	end := sp.span("x") // must not panic
	end()
	if sp.Stage("x") != nil {
		t.Fatal("nil profile returned a histogram")
	}
}

func TestEnableProfilingIdempotent(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := tb.EnableProfiling()
	b := tb.EnableProfiling()
	if a != b {
		t.Fatal("EnableProfiling created a second profile")
	}
}
