package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestStageProfileRecordsPipeline(t *testing.T) {
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := tb.EnableProfiling()
	stack, err := tb.NewStack(StackDKHW, true) // EC: exercises the encoder too
	if err != nil {
		t.Fatal(err)
	}
	tb.Eng.Spawn("io", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := Do(p, stack, Write, Rand, int64(i)*8192, 8192, 0); err != nil {
				t.Errorf("op %d: %v", i, err)
			}
		}
		for i := 0; i < 5; i++ {
			if err := Do(p, stack, Read, Rand, int64(i)*8192, 8192, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		}
	})
	tb.Eng.Run()
	stack.Close()

	for _, stage := range []string{StageHostAPI, StageKernel, StageTransport, StageAccel, StageEncode, StageFanout} {
		h := prof.Stage(stage)
		if h == nil || h.Count() == 0 {
			t.Fatalf("stage %q not recorded", stage)
		}
	}
	if got := prof.Stage(StageKernel).Count(); got != 15 {
		t.Fatalf("kernel stage ops = %d, want 15", got)
	}
	if got := prof.Stage(StageEncode).Count(); got != 10 {
		t.Fatalf("encode stage ops = %d, want 10 (writes only)", got)
	}
	// Sub-stages fit inside the round trip.
	if prof.Stage(StageAccel).Mean() >= prof.Stage(StageKernel).Mean() {
		t.Fatal("accelerator stage not smaller than the round trip")
	}
	if prof.Stage(StageFanout).Mean() >= prof.Stage(StageKernel).Mean() {
		t.Fatal("fanout stage not smaller than the round trip")
	}
	// The encoder occupies well under a microsecond per 8 kB op (Table I).
	if prof.Stage(StageEncode).Mean() > 2*sim.Microsecond {
		t.Fatalf("encoder stage mean %v too large", prof.Stage(StageEncode).Mean())
	}
	out := prof.Table().String()
	if !strings.Contains(out, StageFanout) {
		t.Fatalf("table missing stages:\n%s", out)
	}
	if len(prof.Stages()) != 6 {
		t.Fatalf("stages = %v", prof.Stages())
	}
	if got := prof.Stage(StageHostAPI).Count(); got != 15 {
		t.Fatalf("host-api stage ops = %d, want 15", got)
	}
	// The host-api span contains the kernel span, which contains transport.
	if prof.Stage(StageHostAPI).Mean() < prof.Stage(StageKernel).Mean() {
		t.Fatal("host-api round trip smaller than the kernel round trip")
	}
	if prof.Stage(StageKernel).Mean() < prof.Stage(StageTransport).Mean() {
		t.Fatal("kernel round trip smaller than the transport round trip")
	}
}

// splitProfileFingerprint runs a mixed stream on a profiled split-domain
// testbed and folds every stage histogram into a string.
func splitProfileFingerprint(t *testing.T, seed uint64) (*StageProfile, string) {
	t.Helper()
	tb, err := NewTestbed(splitConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof := tb.EnableProfiling()
	sp, err := ParseStackSpec("deliba-k-sw+cache-lsvd")
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tb.BuildStack(sp)
	if err != nil {
		t.Fatal(err)
	}
	tb.Eng.Spawn("split-profiled-io", func(p *sim.Proc) {
		rng := sim.NewRNG(seed)
		for i := 0; i < 200; i++ {
			op := Write
			if rng.Intn(100) < 50 {
				op = Read
			}
			off := int64(rng.Intn(256)) * 4096
			if err := Do(p, stack, op, Rand, off, 4096, 0); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
		}
	})
	tb.Eng.Run()
	stack.Close()
	tb.Eng.Run() // drain the cache flusher's shutdown
	var b strings.Builder
	for _, stage := range prof.Stages() {
		h := prof.Stage(stage)
		fmt.Fprintf(&b, "%s|%d|%d|%d|%d\n", stage, h.Count(), int64(h.Sum()), int64(h.Min()), int64(h.Max()))
	}
	return prof, b.String()
}

// TestStageProfileSplitDomains is the regression test for profiling on a
// split-domain testbed: the transport stage's span opens on the host shard
// and closes at the request's canonical arrival on the OSD shard, so its
// recorded durations must bound below at the fabric propagation delay —
// a close that misread the opening domain's mid-window clock would record
// skewed (even sub-propagation or clamped-to-zero) times — and the whole
// profile must replay bit-identically. Run under -race this also pins the
// cross-shard record path: host and OSD workers feed one histogram map.
func TestStageProfileSplitDomains(t *testing.T) {
	prof, fp1 := splitProfileFingerprint(t, 7)

	tr := prof.Stage(StageTransport)
	if tr == nil || tr.Count() == 0 {
		t.Fatalf("split-domain run recorded no transport spans; stages: %v", prof.Stages())
	}
	if min := tr.Min(); min < DefaultCostModel().Propagation {
		t.Errorf("transport span min %v below the propagation delay %v: cross-domain close read a skewed clock", min, DefaultCostModel().Propagation)
	}
	for _, stage := range prof.Stages() {
		h := prof.Stage(stage)
		if h.Min() < 0 || h.Max() < h.Min() {
			t.Errorf("stage %s histogram corrupt: min %v max %v", stage, h.Min(), h.Max())
		}
	}
	// Host-side stages must have recorded alongside the cross-domain one.
	for _, stage := range []string{StageKernel, StageCache, StageFanout} {
		if h := prof.Stage(stage); h == nil || h.Count() == 0 {
			t.Errorf("stage %s not recorded on the split testbed", stage)
		}
	}

	if _, fp2 := splitProfileFingerprint(t, 7); fp1 != fp2 {
		t.Fatalf("split-domain profile not deterministic:\n%s\nvs\n%s", fp1, fp2)
	}
}

func TestStageProfileNilSafe(t *testing.T) {
	var sp *StageProfile
	end := sp.span("x") // must not panic
	end()
	if sp.Stage("x") != nil {
		t.Fatal("nil profile returned a histogram")
	}
}

func TestEnableProfilingIdempotent(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := tb.EnableProfiling()
	b := tb.EnableProfiling()
	if a != b {
		t.Fatal("EnableProfiling created a second profile")
	}
}
