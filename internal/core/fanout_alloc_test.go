package core

import (
	"testing"

	"repro/internal/rados"
)

// newFanoutHarness builds a testbed plus a client-side Fanout endpoint.
func newFanoutHarness(tb testing.TB) (*Testbed, *Fanout) {
	tb.Helper()
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	t, err := NewTestbed(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	host, err := t.Fabric.AddHost("fanout-client", 10e9, cfg.CM.HostStack)
	if err != nil {
		tb.Fatal(err)
	}
	return t, &Fanout{Cluster: t.Cluster, From: host}
}

// TestFanoutIssueZeroAlloc pins the steady-state allocation behaviour of the
// fan-out issue paths: after the op pools and the engine's event freelist are
// warm, issuing a replicated write or primary read performs zero heap
// allocations. The warmup issues a deep batch WITHOUT draining so every pool
// reaches the concurrency the measured phase needs, then drains once to
// return everything to the freelists.
func TestFanoutIssueZeroAlloc(t *testing.T) {
	tb, f := newFanoutHarness(t)
	pool := tb.ReplPool
	completed := 0
	done := func(err error) {
		if err != nil {
			t.Error(err)
		}
		completed++
	}
	const warm = 400
	for i := 0; i < warm; i++ {
		f.WriteReplicated(pool, "obj", 0, 4096, rados.ReqOpts{}, done)
		f.ReadReplicated(pool, "obj", 0, 4096, rados.ReqOpts{}, done)
	}
	tb.Eng.Run()
	if completed != 2*warm {
		t.Fatalf("warmup completed %d ops, want %d", completed, 2*warm)
	}

	writeAllocs := testing.AllocsPerRun(100, func() {
		f.WriteReplicated(pool, "obj", 0, 4096, rados.ReqOpts{}, done)
	})
	tb.Eng.Run()
	if writeAllocs != 0 {
		t.Errorf("WriteReplicated issue path allocated %.1f/op, want 0", writeAllocs)
	}

	readAllocs := testing.AllocsPerRun(100, func() {
		f.ReadReplicated(pool, "obj", 0, 4096, rados.ReqOpts{}, done)
	})
	tb.Eng.Run()
	if readAllocs != 0 {
		t.Errorf("ReadReplicated issue path allocated %.1f/op, want 0", readAllocs)
	}
}

// TestFanoutECIssueAllocBound bounds the EC write path: the only permitted
// steady-state allocation is the per-shard key string handed to the store
// (one alloc per shard; 6 shards in the default 4+2 geometry).
func TestFanoutECIssueAllocBound(t *testing.T) {
	tb, f := newFanoutHarness(t)
	pool := tb.ECPool
	completed := 0
	done := func(err error) {
		if err != nil {
			t.Error(err)
		}
		completed++
	}
	const warm = 200
	for i := 0; i < warm; i++ {
		f.WriteEC(pool, "obj", 0, 64<<10, rados.ReqOpts{}, done)
	}
	tb.Eng.Run()
	if completed != warm {
		t.Fatalf("warmup completed %d ops, want %d", completed, warm)
	}
	allocs := testing.AllocsPerRun(100, func() {
		f.WriteEC(pool, "obj", 0, 64<<10, rados.ReqOpts{}, done)
	})
	tb.Eng.Run()
	if max := float64(pool.K + pool.M); allocs > max {
		t.Errorf("WriteEC issue path allocated %.1f/op, want <= %.0f (key strings)", allocs, max)
	}
}

// BenchmarkFanoutWriteReplicated measures one full replicated fan-out write
// at queue depth 1, including the simulated OSD round trip.
func BenchmarkFanoutWriteReplicated(b *testing.B) {
	tb, f := newFanoutHarness(b)
	pool := tb.ReplPool
	done := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	f.WriteReplicated(pool, "obj", 0, 4096, rados.ReqOpts{}, done)
	tb.Eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.WriteReplicated(pool, "obj", 0, 4096, rados.ReqOpts{}, done)
		tb.Eng.Run()
	}
}
