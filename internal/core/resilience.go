package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/rados"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ResilienceConfig shapes the client-side fault tolerance of a testbed's
// stacks: per-attempt deadlines, bounded retries with seeded full-jitter
// backoff, read failover to replica OSDs, and degraded EC reads. The zero
// value (Enabled false) is the pre-fault-injection configuration — no
// policy objects are built and every hot path is bit-identical to a build
// without this file.
type ResilienceConfig struct {
	Enabled bool
	// Deadline bounds each attempt (lost messages surface as timeouts);
	// 0 waits forever.
	Deadline sim.Duration
	// MaxRetries is the number of re-issues after the first attempt.
	MaxRetries int
	// BackoffBase/BackoffCap bound the retry delay window (see
	// faults.Backoff).
	BackoffBase sim.Duration
	BackoffCap  sim.Duration
	// Seed drives the backoff jitter stream.
	Seed uint64
}

// DefaultResilienceConfig returns production-shaped resilience: deadlines
// well above the healthy p999, a handful of retries, and a backoff window
// wide enough to ride out transient fabric faults.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Enabled:     true,
		Deadline:    5 * sim.Millisecond,
		MaxRetries:  4,
		BackoffBase: 50 * sim.Microsecond,
		BackoffCap:  2 * sim.Millisecond,
	}
}

// Resilience is the per-testbed runtime state: the policy, one seeded
// jitter stream shared by every stack on the testbed (draws happen in
// deterministic engine order), and the counters experiments report.
type Resilience struct {
	Cfg      ResilienceConfig
	Counters metrics.Resilience

	eng *sim.Engine
	rng *sim.RNG
	// trace records per-attempt spans for sampled ops (nil = off).
	trace *trace.Sink
}

func newResilience(eng *sim.Engine, cfg ResilienceConfig) *Resilience {
	return &Resilience{Cfg: cfg, eng: eng, rng: sim.NewRNG(cfg.Seed ^ 0xBAC0FF)}
}

// backoff draws the delay before retry attempt (0-based).
func (r *Resilience) backoff(attempt int) sim.Duration {
	return faults.Backoff(r.Cfg.BackoffBase, r.Cfg.BackoffCap, attempt, r.rng)
}

// retryPolicy adapts the testbed policy for the software rados client,
// sharing the counters and the jitter stream.
func (r *Resilience) retryPolicy() *rados.RetryPolicy {
	return &rados.RetryPolicy{
		Deadline:   r.Cfg.Deadline,
		MaxRetries: r.Cfg.MaxRetries,
		Backoff:    r.backoff,
		Counters:   &r.Counters,
	}
}

// retry drives issue through attempts: each gets a deadline timer
// (cancelled via Engine.Cancel when the attempt settles first), failures
// re-issue after a jittered backoff until MaxRetries is spent. A completion
// from an abandoned attempt is dropped — `settled` is per-attempt, so late
// results from a timed-out issue never double-complete done.
//
// For sampled ops each attempt gets a "fanout-attempt" span; the span's
// ref is re-parented into the issue (atr) so the fan-out target spans nest
// under the attempt the critical path descends into, and retries cause-link
// back to the attempt they replace.
func (r *Resilience) retry(isWrite bool, tr trace.Ref, issue func(attempt int, atr trace.Ref, done func(error)), done func(error)) {
	attempt := 0
	start := r.eng.Now()
	inner := done
	// Write outcomes feed the counters' unavailability-window tracking: a
	// write that exhausts its budget opens a stall window backdated to the
	// op's start; the next committed write closes it.
	done = func(err error) {
		if isWrite {
			if err == nil {
				r.Counters.WriteOK(r.eng.Now())
			} else {
				r.Counters.WriteFailed(start)
			}
		}
		inner(err)
	}
	var prevAttempt uint64
	var try func()
	fail := func(err error) {
		if attempt >= r.Cfg.MaxRetries {
			done(err)
			return
		}
		attempt++
		r.Counters.Retries++
		r.eng.Schedule(r.backoff(attempt-1), try)
	}
	try = func() {
		settled := false
		atr := tr
		var h trace.H
		if r.trace != nil && tr.Sampled() {
			h = r.trace.Begin(tr, "fanout-attempt")
			if attempt > 0 {
				h.Link(trace.KindRetry, prevAttempt)
			}
			prevAttempt = h.ID()
			atr = h.Ref()
		}
		var timer sim.EventID
		armed := r.Cfg.Deadline > 0
		if armed {
			timer = r.eng.Schedule(r.Cfg.Deadline, func() {
				if settled {
					return
				}
				settled = true
				h.End()
				r.Counters.DeadlineExceeded++
				fail(rados.ErrDeadline)
			})
		}
		issue(attempt, atr, func(err error) {
			if settled {
				return
			}
			settled = true
			h.End()
			if armed {
				r.eng.Cancel(timer)
			}
			if err == nil {
				done(nil)
				return
			}
			fail(err)
		})
	}
	try()
}

// --- resilient Fanout entry points ---------------------------------------
//
// The R variants fall through to the plain methods when no resilience is
// configured (one nil check — the fan-out hot path is untouched when off).
// When on, writes retry in place, replicated reads fail over by rotating
// the source replica per attempt, and EC reads count reconstruction.

// WriteReplicatedR is WriteReplicated with deadline + retry.
func (f *Fanout) WriteReplicatedR(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	if f.Res == nil {
		f.WriteReplicated(pool, obj, off, n, opts, done)
		return
	}
	f.Res.retry(true, opts.Trace, func(_ int, atr trace.Ref, cb func(error)) {
		aopts := opts
		aopts.Trace = atr
		f.WriteReplicated(pool, obj, off, n, aopts, cb)
	}, done)
}

// ReadReplicatedR is ReadReplicated with deadline + retry + replica
// failover.
func (f *Fanout) ReadReplicatedR(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	if f.Res == nil {
		f.ReadReplicated(pool, obj, off, n, opts, done)
		return
	}
	f.Res.retry(false, opts.Trace, func(attempt int, atr trace.Ref, cb func(error)) {
		aopts := opts
		aopts.Trace = atr
		f.readReplicatedShift(pool, obj, off, n, aopts, attempt, cb)
	}, done)
}

// WriteECR is WriteEC with deadline + retry.
func (f *Fanout) WriteECR(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	if f.Res == nil {
		f.WriteEC(pool, obj, off, n, opts, done)
		return
	}
	f.Res.retry(true, opts.Trace, func(_ int, atr trace.Ref, cb func(error)) {
		aopts := opts
		aopts.Trace = atr
		f.WriteEC(pool, obj, off, n, aopts, cb)
	}, done)
}

// ReadECR is ReadEC with deadline + retry; degraded gathers (parity shards
// standing in for unreachable data shards) are counted per attempt.
func (f *Fanout) ReadECR(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(needDecode bool, err error)) {
	if f.Res == nil {
		f.ReadEC(pool, obj, off, n, opts, done)
		return
	}
	degraded := false
	f.Res.retry(false, opts.Trace, func(_ int, atr trace.Ref, cb func(error)) {
		aopts := opts
		aopts.Trace = atr
		f.ReadEC(pool, obj, off, n, aopts, func(needDecode bool, err error) {
			if needDecode {
				degraded = true
				f.Res.Counters.DegradedReads++
			}
			cb(err)
		})
	}, func(err error) { done(degraded, err) })
}

// readReplicatedShift is ReadReplicated reading from the (shift mod up)-th
// up member of the acting set instead of the primary, the failover path for
// retry attempt `shift`.
func (f *Fanout) readReplicatedShift(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, shift int, done func(error)) {
	if f.Raft != nil && pool == f.Raft.Sys.Pool {
		// repl-raft: the router rotates targets itself when the leader hint
		// goes stale; replica-shift failover belongs to primary-copy.
		f.Raft.Read(obj, off, n, opts, done)
		return
	}
	c := f.Cluster
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(err)
		return
	}
	up := f.upSet(acting)
	if len(up) == 0 {
		done(fmt.Errorf("core: pg for %q has no up replicas", obj))
		return
	}
	osd := up[shift%len(up)]
	if shift > 0 && osd != up[0] {
		f.Res.Counters.Failovers++
		if f.Trace != nil {
			f.Trace.Mark(opts.Trace, "replica-failover", trace.KindFailover, 0)
		}
	}
	op := f.getRead()
	op.opts, op.obj, op.off, op.n = opts, obj, off, n
	op.osd, op.node, op.err, op.done = osd, c.NodeOf(osd), nil, done
	op.span = trace.H{}
	if f.Trace != nil && opts.Trace.Sampled() {
		op.span = f.Trace.Begin(opts.Trace, "replica-read")
	}
	c.Fabric.Send(f.From, op.node, rados.HdrBytes, op.send)
}
