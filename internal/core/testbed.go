package core

import (
	"fmt"

	"repro/internal/blockmq"
	"repro/internal/netsim"
	"repro/internal/rados"
	"repro/internal/raft"
	"repro/internal/rbd"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestbedConfig shapes one simulated deployment (defaults mirror the
// paper's industrial-lab testbed: one client, two server nodes with 16 OSDs
// each, 10 GbE).
type TestbedConfig struct {
	Nodes       int
	OSDsPerNode int
	// ReplicaSize is the replicated pool's copy count (2 on the two-node
	// testbed).
	ReplicaSize int
	// ECK/ECM is the erasure geometry.
	ECK, ECM int
	// PGs is the placement-group count per pool.
	PGs uint32
	// ImageBytes is the virtual disk size; ObjectBytes the RBD stripe unit.
	ImageBytes  int64
	ObjectBytes int
	// Functional stores real payload bytes (MemStore + real codec work);
	// benchmarks leave it false for metadata-only stores.
	Functional bool
	// Jitter enables OSD service-time noise (off for exactly reproducible
	// latency assertions).
	Jitter bool
	// CM is the cost model; zero-value fields are filled from
	// DefaultCostModel.
	CM *CostModel
	// Resilience configures client-side fault tolerance (deadlines,
	// retries, failover). The zero value disables it: no policy objects are
	// built and every stack's hot path is byte-for-byte the pre-resilience
	// one.
	Resilience ResilienceConfig
	// Raft parameterizes the per-PG Raft groups backing repl-raft stacks
	// (zero-value fields are filled from raft.DefaultConfig). It has no
	// effect on repl-primary stacks: the Raft system is only instantiated
	// when a repl-raft spec is built.
	Raft raft.Config

	// --- ablation knobs (zero values = the paper's configuration) ------

	// RingInterrupt switches the DeLiBA-K rings from kernel-polled SQPOLL
	// to interrupt mode with per-batch enter syscalls (ablation ①).
	RingInterrupt bool
	// DisableDMQBypass routes DK requests through an mq-deadline
	// scheduler instead of the DMQ direct-issue path (ablation ②).
	DisableDMQBypass bool
	// Instances overrides the io_uring instance count (0 = the paper's 3).
	Instances int

	// Shards > 1 runs the testbed inside a sharded engine group: the whole
	// classic testbed is one topology domain on the group's home shard, so
	// event order — and therefore every digest — is byte-identical to the
	// plain engine; the remaining shards are available to co-scheduled
	// domains (the city-scale experiment family) or simply idle. 0 or 1
	// builds a plain engine.
	Shards int
	// SplitDomains partitions the classic testbed itself over the shard
	// group: the client host — rings, kernel layers and the LSVD cache
	// device — forms one topology domain on shard 0, and every OSD node
	// gets its own topology domain, placed round-robin over shards
	// 1..Shards-1, with the network propagation delay as the conservative
	// lookahead between all of them. Requires Shards >= 2 and restricts
	// the buildable stacks to host-only software-placement shapes (the
	// card models and the resilience/fault layers drive cluster state
	// from the host side). Event order is NOT byte-identical to the
	// single-domain testbed — the replication protocol becomes
	// arrival-driven, including the inter-node replica legs — but the
	// canonical (time, domain, sequence) merge makes every run replay
	// bit-identically for any worker count AND any shard count >= 2: the
	// domain list depends only on Nodes, never on where the domains land.
	SplitDomains bool
}

// DefaultTestbedConfig returns the paper-testbed shape in benchmark mode.
func DefaultTestbedConfig() TestbedConfig {
	cm := DefaultCostModel()
	return TestbedConfig{
		Nodes:       2,
		OSDsPerNode: 16,
		ReplicaSize: 2,
		ECK:         4,
		ECM:         2,
		PGs:         256,
		ImageBytes:  8 << 30,
		ObjectBytes: 4 << 20,
		Functional:  false,
		Jitter:      true,
		CM:          &cm,
	}
}

// Testbed is one fully wired deployment: engine, fabric, cluster, pools and
// images. Build exactly one Stack per testbed (stacks own fabric hosts and
// FPGA state; experiments use a fresh testbed per run for isolation and
// determinism).
type Testbed struct {
	Eng *sim.Engine
	// Shards is the engine group when Cfg.Shards > 1 (nil otherwise); Eng is
	// then the home-shard engine and Eng.Run delegates to the group.
	Shards  *sim.Shards
	Cfg     TestbedConfig
	CM      CostModel
	Fabric  *netsim.Fabric
	Cluster *rados.Cluster
	// ReplPool/ECPool and their images.
	ReplPool, ECPool   *rados.Pool
	ReplImage, ECImage *rbd.Image
	// Profile, when non-nil (EnableProfiling), receives per-stage latency
	// histograms from stacks built afterwards.
	Profile *StageProfile
	// Res, when non-nil (Cfg.Resilience.Enabled), is the resilience state
	// shared by every stack built on this testbed: one policy, one jitter
	// stream, one set of counters.
	Res *Resilience
	// RaftSys is the per-PG multi-Raft backend over the replicated pool,
	// created by the first repl-raft BuildStack and shared afterwards; nil
	// on repl-primary testbeds.
	RaftSys *raft.System
	// Tracer, when non-nil (EnableTracing), drives per-I/O span tracing in
	// stacks built afterwards. traceHost is the host-domain sink; on a
	// split-domain testbed each OSD node records into a sink on its own
	// node domain.
	Tracer    *trace.Tracer
	traceHost *trace.Sink
	// osdEngs, on a split-domain testbed, is the engine of each OSD node's
	// domain in node order (nil otherwise).
	osdEngs []*sim.Engine
	// QoSSched, when non-nil, is the per-tenant QoS elevator installed by a
	// qos-tbucket/qos-dmclock stack built on this testbed; experiments read
	// its dispatch/throttle accounting after a run.
	QoSSched blockmq.QoSReporter
}

// EnableTracing attaches a per-I/O span tracer to the testbed. It must be
// called before building the stack. Sinks are registered in a fixed
// order — host domain first, then the OSD-side domain — so span IDs and
// the finalized merge order are deterministic. The OSD service spans are
// wired immediately (OSDs already exist); stack-side instrumentation
// points pick the sink up at BuildStack time.
func (tb *Testbed) EnableTracing(t *trace.Tracer) {
	if t == nil || tb.Tracer != nil {
		return
	}
	tb.Tracer = t
	tb.traceHost = t.Sink(tb.Eng, "host")
	if tb.Cfg.SplitDomains {
		// One sink per node domain, registered in node order so span IDs
		// and the finalized merge order stay deterministic.
		for n, oe := range tb.osdEngs {
			sink := t.Sink(oe, fmt.Sprintf("osd-node%d", n))
			for o := n * tb.Cfg.OSDsPerNode; o < (n+1)*tb.Cfg.OSDsPerNode; o++ {
				tb.Cluster.OSDs[o].SetTraceSink(sink)
			}
		}
	} else {
		for _, o := range tb.Cluster.OSDs {
			o.SetTraceSink(tb.traceHost)
		}
	}
	if tb.Res != nil {
		tb.Res.trace = tb.traceHost
	}
}

// NewTestbed builds the cluster side.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.CM == nil {
		cm := DefaultCostModel()
		cfg.CM = &cm
	}
	var eng *sim.Engine
	var group *sim.Shards
	var hostDom sim.DomainID
	var osdDoms []sim.DomainID
	var osdEngs []*sim.Engine
	switch {
	case cfg.SplitDomains:
		if cfg.Shards < 2 {
			return nil, fmt.Errorf("core: SplitDomains needs Shards >= 2 (host and OSD domains on separate shards), got %d", cfg.Shards)
		}
		if cfg.Resilience.Enabled {
			return nil, fmt.Errorf("core: resilience is not supported with SplitDomains (retry attempts and failover read cluster state from the host domain)")
		}
		group = sim.NewShards(cfg.Shards, cfg.CM.Propagation)
		hostDom, eng = group.AddDomainAt("host", 0)
		// One topology domain per OSD node, round-robin over the non-host
		// shards. The domain list is a function of Nodes alone; shard
		// placement only balances work, it cannot reorder the canonical
		// cross-domain merge.
		osdDoms = make([]sim.DomainID, cfg.Nodes)
		osdEngs = make([]*sim.Engine, cfg.Nodes)
		for n := 0; n < cfg.Nodes; n++ {
			osdDoms[n], osdEngs[n] = group.AddDomainAt(
				fmt.Sprintf("osd-node%d", n), 1+n%(cfg.Shards-1))
		}
	case cfg.Shards > 1:
		group = sim.NewShards(cfg.Shards, cfg.CM.Propagation)
		_, eng = group.AddDomainAt("testbed", 0)
	default:
		eng = sim.NewEngine()
	}
	// Topology hint: pre-size the event pool for the testbed's steady state
	// (per-OSD queues plus in-flight fabric messages) so benchmark runs never
	// grow the heap on the hot path.
	clusterEng := eng
	if osdEngs != nil {
		clusterEng = osdEngs[0]
		for _, oe := range osdEngs {
			oe.Reserve(cfg.OSDsPerNode*64 + 2048)
		}
	} else {
		clusterEng.Reserve(cfg.Nodes*cfg.OSDsPerNode*64 + 4096)
	}
	fabric := netsim.NewFabric(eng, cfg.CM.Propagation)
	if cfg.SplitDomains {
		fabric.Shard(group, hostDom)
	}
	ccfg := rados.DefaultClusterConfig()
	ccfg.Nodes = cfg.Nodes
	ccfg.OSDsPerNode = cfg.OSDsPerNode
	ccfg.NICBitsPerSec = cfg.CM.NICBitsPerSec
	ccfg.NodeStack = cfg.CM.HostStack
	if !cfg.Jitter {
		ccfg.Profile.JitterFrac = 0
	}
	if cfg.Functional {
		ccfg.NewStore = func() rados.ObjectStore { return rados.NewMemStore() }
	} else {
		ccfg.NewStore = func() rados.ObjectStore { return rados.NewNullStore() }
	}
	ccfg.NodeEngines = osdEngs
	cluster, err := rados.NewCluster(clusterEng, fabric, ccfg)
	if err != nil {
		return nil, err
	}
	if cfg.SplitDomains {
		// The cluster added its node hosts under the fabric's default (host)
		// domain; pin each to its node's own domain before anything runs.
		for n, h := range cluster.NodeHosts {
			fabric.PlaceHost(h, osdDoms[n], osdEngs[n])
		}
	}
	repl, err := cluster.CreateReplicatedPool("rbd", cfg.ReplicaSize, cfg.PGs)
	if err != nil {
		return nil, err
	}
	ec, err := cluster.CreateECPool("rbd-ec", cfg.ECK, cfg.ECM, cfg.PGs)
	if err != nil {
		return nil, err
	}
	replImg, err := rbd.NewImage("vol0", cfg.ImageBytes, cfg.ObjectBytes, repl)
	if err != nil {
		return nil, err
	}
	ecImg, err := rbd.NewImage("vol0ec", cfg.ImageBytes, cfg.ObjectBytes, ec)
	if err != nil {
		return nil, err
	}
	tb := &Testbed{
		Eng:       eng,
		Shards:    group,
		Cfg:       cfg,
		CM:        *cfg.CM,
		Fabric:    fabric,
		Cluster:   cluster,
		ReplPool:  repl,
		ECPool:    ec,
		ReplImage: replImg,
		ECImage:   ecImg,
		osdEngs:   osdEngs,
	}
	if cfg.Resilience.Enabled {
		tb.Res = newResilience(eng, cfg.Resilience)
	}
	return tb, nil
}

// StackKind names the buildable framework variants.
type StackKind int

const (
	// StackDKHW is hardware-accelerated DeLiBA-K (the paper's D3).
	StackDKHW StackKind = iota
	// StackD2HW is hardware-accelerated DeLiBA-2.
	StackD2HW
	// StackD1HW is hardware-accelerated DeLiBA-1 (replication only).
	StackD1HW
	// StackDKSW is the DeLiBA-K software baseline (io_uring + kernel DMQ
	// + RBD, no FPGA).
	StackDKSW
	// StackD2SW is the DeLiBA-2 software baseline (NBD + user-space
	// libraries, no FPGA).
	StackD2SW
)

func (k StackKind) String() string {
	switch k {
	case StackDKHW:
		return "deliba-k-hw"
	case StackD2HW:
		return "deliba-2-hw"
	case StackD1HW:
		return "deliba-1-hw"
	case StackDKSW:
		return "deliba-k-sw"
	case StackD2SW:
		return "deliba-2-sw"
	default:
		return fmt.Sprintf("stack(%d)", int(k))
	}
}

// poolAndImage selects the pool/image pair for the mode.
func (tb *Testbed) poolAndImage(ec bool) (*rados.Pool, *rbd.Image) {
	if ec {
		return tb.ECPool, tb.ECImage
	}
	return tb.ReplPool, tb.ReplImage
}

// raftSystem returns (creating on first use) the testbed's multi-Raft
// backend over the replicated pool.
func (tb *Testbed) raftSystem() *raft.System {
	if tb.RaftSys == nil {
		tb.RaftSys = raft.NewSystem(tb.Cluster, tb.ReplPool, tb.Cfg.Raft)
		tb.RaftSys.Sink = tb.traceHost
	}
	return tb.RaftSys
}

// NewStack constructs a framework stack over this testbed: the kind's
// declarative spec, overlaid with the testbed's legacy ablation knobs,
// handed to BuildStack. ec selects the erasure-coded pool instead of the
// replicated one.
func (tb *Testbed) NewStack(kind StackKind, ec bool) (Stack, error) {
	spec, err := Spec(kind)
	if err != nil {
		return nil, err
	}
	spec.EC = ec
	if spec.HostAPI == HostIOUring {
		spec.RingInterrupt = tb.Cfg.RingInterrupt
		if tb.Cfg.Instances > 0 {
			spec.Instances = tb.Cfg.Instances
		}
		if tb.Cfg.DisableDMQBypass && spec.Transport == TransportQDMA {
			spec.Block = BlockMQDeadline
		}
	}
	return tb.BuildStack(spec)
}
