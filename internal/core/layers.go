package core

import (
	"fmt"

	"repro/internal/blockmq"
	"repro/internal/fpga"
	"repro/internal/iouring"
	"repro/internal/legacyapi"
	"repro/internal/lsvd"
	"repro/internal/netsim"
	"repro/internal/qdma"
	"repro/internal/rados"
	"repro/internal/raft"
	"repro/internal/rbd"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uifd"
)

// This file is the imperative half of the stack pipeline: the five layer
// interfaces a stack composes (host API, block layer, transport, placement,
// fan-out), their implementations, and BuildStack, which wires a validated
// StackSpec into a running Stack. Every DeLiBA generation — and any valid
// hybrid — is one path through these constructors; none has a bespoke
// stack type anymore.
//
// Fidelity note: the builders preserve the exact construction order and
// event sequences of the old per-generation constructors (fabric host →
// shell → card backend → QDMA/UIFD → blk-mq → rings, fused daemon CPU
// charges, fused card pipeline reservations), because experiment digests
// are bit-exact regression oracles and event tie-breaking is
// creation-order sensitive.

// HostAPI is how block I/O enters the stack: DeLiBA-K's io_uring ring set
// or the DeLiBA-1/2 NBD daemon loop. tr is the per-I/O trace context
// (zero = unsampled) rooted by the stack before submission; tenant is the
// owning tenant (0 = untenanted) that rides the I/O down every layer.
type HostAPI interface {
	Submit(op OpType, pattern Pattern, off int64, n int, cpu, tenant int, tr trace.Ref, done func(error))
	Close()
}

// BlockLayer is the kernel block layer between the host API and the
// transport (DMQ bypass, mq-deadline, or none for the user-space daemons).
type BlockLayer interface {
	Kind() BlockKind
	// MQ exposes the blk-mq instance; nil when the path has no kernel
	// block queue (host-only transport folds the DMQ/RBD residency into
	// the map cost; the NBD daemons bypass the kernel entirely).
	MQ() *blockmq.MQ
}

// Transport is the host↔card data path (QDMA queue sets, the legacy DMA
// engine, or nothing for host-only stacks).
type Transport interface {
	Kind() TransportKind
	// Driver exposes the UIFD driver on the QDMA path (nil otherwise).
	Driver() *uifd.Driver
}

// Placement computes CRUSH placement: an RTL or HLS kernel on the card, or
// the software client (which embeds it in its request cost).
type Placement interface {
	Kind() PlacementKind
	// Shell exposes the FPGA design hosting the kernels (nil for
	// software placement).
	Shell() *fpga.Shell
	// Select computes placement asynchronously on the card; cont receives
	// the post-selection kernel penalty to charge (the HLS slowdown) and
	// any error.
	Select(pg uint32, width int, cont func(penalty sim.Duration, err error))
	// SelectOn computes placement from a blocked host proc — DeLiBA-1's
	// offload round trip — sleeping the kernel penalty in-line.
	SelectOn(p *sim.Proc, pg uint32, width int) error
}

// FanoutLayer is the network path that carries replica/shard fan-out: the
// card NIC (RTL or HLS TCP/IP) or the host stack (raw Fanout for the D1
// daemon, the Ceph client for the software baselines).
type FanoutLayer interface {
	Kind() FanoutKind
	// Fan exposes the raw fan-out engine (nil on the client path).
	Fan() *Fanout
	// Client exposes the software Ceph client (nil on the card/host-NIC
	// paths).
	Client() *rados.Client
}

// --- host APIs -----------------------------------------------------------

// uringHost adapts the shared ringSet to the HostAPI boundary.
type uringHost struct{ rs *ringSet }

func (h *uringHost) Submit(op OpType, pattern Pattern, off int64, n int, cpu, tenant int, tr trace.Ref, done func(error)) {
	h.rs.submit(op, pattern, off, n, cpu, tenant, tr, done)
}

func (h *uringHost) Close() { h.rs.close() }

// nbdDatapath is what an NBD daemon does with a request once its host path
// cost is paid: cross to the card, call the client library, or run the
// DeLiBA-1 per-extent offload interleave.
type nbdDatapath interface {
	// hostCPU is extra daemon CPU charged with the NBD path cost in one
	// fused Resource.Use (splitting it would change contention).
	hostCPU(op OpType, n int) sim.Duration
	run(p *sim.Proc, op OpType, pattern Pattern, off int64, n, tenant int, tr trace.Ref) error
}

// nbdHost is the single-threaded NBD/user-space daemon loop shared by
// DeLiBA-1/2: every request pays the legacy API crossings on one daemon
// resource, sleeps the NBD socket round trip, then runs its datapath.
type nbdHost struct {
	tb       *Testbed
	profile  legacyapi.CostProfile
	daemon   *sim.Resource
	procName string
	path     nbdDatapath
}

func (h *nbdHost) Submit(op OpType, pattern Pattern, off int64, n int, cpu, tenant int, tr trace.Ref, done func(error)) {
	h.tb.Eng.Spawn(h.procName, func(p *sim.Proc) {
		// The daemon is single-threaded, so its CPU time serializes
		// across outstanding I/Os.
		h.daemon.Use(p, 1, h.profile.PathCost(n)+h.path.hostCPU(op, n))
		p.Sleep(h.tb.CM.NBDSocketRTT)
		done(h.path.run(p, op, pattern, off, n, tenant, tr))
	})
}

func (h *nbdHost) Close() {}

// --- NBD datapaths -------------------------------------------------------

// legacyCardPath is DeLiBA-2's datapath: legacy DMA to the card (payload
// for writes, command for reads), the card pipeline, DMA back.
type legacyCardPath struct {
	cm      CostModel
	backend *cardBackend
	prof    *StageProfile
}

func (dp *legacyCardPath) hostCPU(OpType, int) sim.Duration { return 0 }

func (dp *legacyCardPath) run(p *sim.Proc, op OpType, pattern Pattern, off int64, n, tenant int, tr trace.Ref) error {
	// The transport span covers the full below-daemon round trip: H2C
	// DMA, card residency, C2H DMA. Subtract the card stages to isolate
	// the DMA path itself.
	endTrans := dp.prof.span(StageTransport)
	h2c := rados.HdrBytes
	if op == Write {
		h2c = n
	}
	p.Sleep(dp.cm.LegacyDMACost + pcieTime(h2c))
	err := blocking(p, func(cb func(error)) {
		dp.backend.process(op, pattern, off, n, tenant, tr, cb)
	})
	c2h := rados.HdrBytes
	if op == Read {
		c2h = n
	}
	p.Sleep(dp.cm.LegacyDMACost + pcieTime(c2h))
	endTrans()
	return err
}

// clientPath is the software-baseline datapath: the user-space Ceph
// library, extent by extent, on the daemon thread.
type clientPath struct {
	cm     CostModel
	client *rados.Client
	image  *rbd.Image
	pool   *rados.Pool
	prof   *StageProfile
}

func (dp *clientPath) hostCPU(op OpType, _ int) sim.Duration {
	if op == Read {
		return dp.cm.D2SWLibraryRead
	}
	return dp.cm.D2SWLibraryWrite
}

func (dp *clientPath) run(p *sim.Proc, op OpType, pattern Pattern, off int64, n, tenant int, tr trace.Ref) error {
	opts := rados.ReqOpts{Random: pattern == Rand, Tenant: tenant, Trace: tr}
	return dp.image.VisitExtents(off, n, false, func(e rbd.Extent) error {
		endFan := dp.prof.span(StageFanout)
		var operr error
		if op == Write {
			operr = dp.client.WriteOpts(p, dp.pool, e.Object, e.Off, zeros(e.Len), opts)
		} else {
			_, operr = dp.client.ReadOpts(p, dp.pool, e.Object, e.Off, e.Len, opts)
		}
		endFan()
		return operr
	})
}

// d1Path is DeLiBA-1's datapath: per extent, the payload and command
// descriptors round-trip to the card for placement, then the HOST fans out
// over its kernel TCP/IP stack on the same daemon thread (D1 had no FPGA
// network stack).
type d1Path struct {
	tb     *Testbed
	place  Placement
	fan    *Fanout
	image  *rbd.Image
	pool   *rados.Pool
	daemon *sim.Resource
	prof   *StageProfile
}

func (dp *d1Path) hostCPU(OpType, int) sim.Duration { return 0 }

func (dp *d1Path) run(p *sim.Proc, op OpType, pattern Pattern, off int64, n, tenant int, tr trace.Ref) error {
	cm := dp.tb.CM
	opts := rados.ReqOpts{Random: pattern == Rand, Tenant: tenant, Trace: tr}
	return dp.image.VisitExtents(off, n, false, func(e rbd.Extent) error {
		// The payload crosses to the card (the storage accelerators hash
		// over the data) and back, since D1's network path is on the
		// host; then a second round trip for the command descriptors.
		endTrans := dp.prof.span(StageTransport)
		p.Sleep(2 * (cm.LegacyDMACost + pcieTime(e.Len)))
		p.Sleep(2 * (cm.LegacyDMACost + pcieTime(rados.HdrBytes)))
		endTrans()
		pg := dp.tb.Cluster.PGOf(dp.pool, e.Object)
		if err := dp.place.SelectOn(p, pg, dp.pool.Width()); err != nil {
			return err
		}
		// Host-side fan-out over the kernel TCP/IP stack: one sendmsg
		// per replica and one recvmsg per ack, each a syscall + context
		// switch, then an interrupt-driven completion wakeup — all on
		// the single daemon thread.
		msgs := dp.pool.Width()
		if op == Read {
			msgs = 1
		}
		dp.daemon.Use(p, 1,
			sim.Duration(2*msgs)*(cm.D1Host.SyscallCost+cm.D1Host.ContextSwitchCost)+
				sim.Duration(msgs)*cm.D1NetWakeup)
		endFan := dp.prof.span(StageFanout)
		var ferr error
		if op == Write {
			ferr = blocking(p, func(cb func(error)) {
				dp.fan.WriteReplicatedR(dp.pool, e.Object, e.Off, e.Len, opts, cb)
			})
		} else {
			ferr = blocking(p, func(cb func(error)) {
				dp.fan.ReadReplicatedR(dp.pool, e.Object, e.Off, e.Len, opts, cb)
			})
		}
		endFan()
		return ferr
	})
}

// --- block layers --------------------------------------------------------

type dmqBlock struct {
	kind BlockKind
	mq   *blockmq.MQ
}

func (b *dmqBlock) Kind() BlockKind { return b.kind }
func (b *dmqBlock) MQ() *blockmq.MQ { return b.mq }

type noBlock struct{}

func (noBlock) Kind() BlockKind { return BlockNone }
func (noBlock) MQ() *blockmq.MQ { return nil }

// --- transports ----------------------------------------------------------

type qdmaTransport struct{ drv *uifd.Driver }

func (t *qdmaTransport) Kind() TransportKind  { return TransportQDMA }
func (t *qdmaTransport) Driver() *uifd.Driver { return t.drv }

type legacyDMA struct{}

func (legacyDMA) Kind() TransportKind  { return TransportLegacyDMA }
func (legacyDMA) Driver() *uifd.Driver { return nil }

type hostOnly struct{}

func (hostOnly) Kind() TransportKind  { return TransportHostOnly }
func (hostOnly) Driver() *uifd.Driver { return nil }

// --- placements ----------------------------------------------------------

// rtlPlacement is DeLiBA-K's straw2 kernel: full pipeline speed, no
// penalty beyond the kernel occupancy itself.
type rtlPlacement struct {
	shell *fpga.Shell
	prof  *StageProfile
}

func (pl *rtlPlacement) Kind() PlacementKind { return PlacementRTL }
func (pl *rtlPlacement) Shell() *fpga.Shell  { return pl.shell }

func (pl *rtlPlacement) Select(pg uint32, width int, cont func(sim.Duration, error)) {
	end := pl.prof.span(StageAccel)
	pl.shell.Straw2.Select(pg, width, func(_ []int, err error) {
		end()
		cont(0, err)
	})
}

func (pl *rtlPlacement) SelectOn(p *sim.Proc, pg uint32, width int) error {
	end := pl.prof.span(StageAccel)
	_, err := pl.shell.Straw2.SelectWait(p, pg, width)
	end()
	return err
}

// hlsPlacement is the DeLiBA-1/2 HLS kernel: the same selection with the
// HLS latency scale charged on top.
type hlsPlacement struct {
	shell *fpga.Shell
	scale float64
	prof  *StageProfile
}

func (pl *hlsPlacement) Kind() PlacementKind { return PlacementHLS }
func (pl *hlsPlacement) Shell() *fpga.Shell  { return pl.shell }

func (pl *hlsPlacement) penalty(passes int) sim.Duration {
	if pl.scale <= 1 {
		return 0
	}
	return sim.Duration(float64(pl.shell.Straw2.Spec.PipelineLatency()) *
		(pl.scale - 1) * float64(passes))
}

func (pl *hlsPlacement) Select(pg uint32, width int, cont func(sim.Duration, error)) {
	end := pl.prof.span(StageAccel)
	pl.shell.Straw2.Select(pg, width, func(_ []int, err error) {
		end()
		cont(pl.penalty(width), err)
	})
}

func (pl *hlsPlacement) SelectOn(p *sim.Proc, pg uint32, width int) error {
	end := pl.prof.span(StageAccel)
	_, err := pl.shell.Straw2.SelectWait(p, pg, width)
	end()
	if err != nil {
		return err
	}
	p.Sleep(pl.penalty(width))
	return nil
}

// swPlacement marks placement as computed inside the software client (its
// request cost embeds SWPlacement); nothing runs on a card.
type swPlacement struct{}

func (swPlacement) Kind() PlacementKind { return PlacementSoftware }
func (swPlacement) Shell() *fpga.Shell  { return nil }
func (swPlacement) Select(_ uint32, _ int, cont func(sim.Duration, error)) {
	cont(0, nil)
}
func (swPlacement) SelectOn(*sim.Proc, uint32, int) error { return nil }

// --- fan-out layers ------------------------------------------------------

// cardFanout is the card NIC's TCP/IP stack (RTL for DeLiBA-K, HLS for
// DeLiBA-2) driving the raw fan-out engine.
type cardFanout struct {
	kind FanoutKind
	fan  *Fanout
}

func (f *cardFanout) Kind() FanoutKind      { return f.kind }
func (f *cardFanout) Fan() *Fanout          { return f.fan }
func (f *cardFanout) Client() *rados.Client { return nil }

// hostFanout is DeLiBA-1's host-NIC fan-out.
type hostFanout struct{ fan *Fanout }

func (f *hostFanout) Kind() FanoutKind      { return FanoutHostTCP }
func (f *hostFanout) Fan() *Fanout          { return f.fan }
func (f *hostFanout) Client() *rados.Client { return nil }

// clientFanout is the software Ceph client (primary-copy protocol over the
// host NIC, software CRUSH inside).
type clientFanout struct{ client *rados.Client }

func (f *clientFanout) Kind() FanoutKind      { return FanoutHostTCP }
func (f *clientFanout) Fan() *Fanout          { return nil }
func (f *clientFanout) Client() *rados.Client { return f.client }

// --- the composed stack --------------------------------------------------

// pipelineStack is the one Stack implementation: five layers assembled by
// BuildStack.
type pipelineStack struct {
	tb    *Testbed
	spec  StackSpec
	image *rbd.Image
	pool  *rados.Pool

	host      HostAPI
	block     BlockLayer
	transport Transport
	placement Placement
	fanout    FanoutLayer

	// cache is the LSVD write-back tier (nil for cache-none specs).
	cache *lsvd.Cache
}

func (s *pipelineStack) Name() string { return s.spec.Name }

func (s *pipelineStack) Submit(op OpType, pattern Pattern, off int64, n int, cpu int, done func(error)) {
	s.SubmitTenant(op, pattern, off, n, cpu, 0, done)
}

// SubmitTenant is Submit for an I/O owned by a tenant: the identity rides
// the op through every layer (QoS scheduling, SR-IOV queue mapping,
// per-tenant trace exemplars). Tenant 0 is the untenanted default and
// leaves the event sequence identical to Submit.
func (s *pipelineStack) SubmitTenant(op OpType, pattern Pattern, off int64, n int, cpu, tenant int, done func(error)) {
	// Root the per-I/O trace here: every op (sampled or not) advances the
	// deterministic submit sequence the sampling policy keys on.
	var tr trace.Ref
	if sink := s.tb.traceHost; sink != nil {
		name := "io-read"
		if op == Write {
			name = "io-write"
		}
		h := sink.Root(name)
		if h.On() {
			h.SetTenant(tenant)
			tr = h.Ref()
			inner := done
			done = func(err error) {
				h.End()
				inner(err)
			}
		}
	}
	if prof := s.tb.Profile; prof != nil {
		end := prof.span(StageHostAPI)
		inner := done
		done = func(err error) {
			end()
			inner(err)
		}
	}
	s.host.Submit(op, pattern, off, n, cpu, tenant, tr, done)
}

func (s *pipelineStack) ImageBytes() int64 { return s.image.Size }

func (s *pipelineStack) Close() {
	s.host.Close()
	if s.cache != nil {
		s.cache.Close()
	}
}

// Cache exposes the LSVD write-back cache tier; nil for cache-none specs.
func (s *pipelineStack) Cache() *lsvd.Cache { return s.cache }

// Spec returns the composition this stack was built from.
func (s *pipelineStack) Spec() StackSpec { return s.spec }

// Shell exposes the FPGA design (for the DFX and power experiments); nil
// for software placement.
func (s *pipelineStack) Shell() *fpga.Shell { return s.placement.Shell() }

// MQ exposes the blk-mq instance (for ablation statistics); nil off the
// QDMA path.
func (s *pipelineStack) MQ() *blockmq.MQ { return s.block.MQ() }

// Driver exposes the UIFD driver; nil off the QDMA path.
func (s *pipelineStack) Driver() *uifd.Driver { return s.transport.Driver() }

// Rings exposes the io_uring instances; nil for NBD host APIs.
func (s *pipelineStack) Rings() []*iouring.Ring {
	if h, ok := s.host.(*uringHost); ok {
		return h.rs.rings
	}
	return nil
}

// --- BuildStack ----------------------------------------------------------

// BuildStack wires a StackSpec into a running stack over this testbed.
// All five paper generations and every valid hybrid come out of this one
// constructor; Validate decides what is buildable.
func (tb *Testbed) BuildStack(spec StackSpec) (Stack, error) {
	if spec.Name == "" {
		spec.Name = spec.canonicalName()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tb.Cfg.SplitDomains {
		if spec.Transport != TransportHostOnly || spec.Placement != PlacementSoftware {
			return nil, fmt.Errorf("core: split-domain testbed supports only host-only software-placement stacks; %q drives the card from the host domain", spec.Name)
		}
		if spec.EC {
			return nil, fmt.Errorf("core: erasure coding is not supported on the split-domain testbed")
		}
		if spec.Replication == ReplRaft {
			return nil, fmt.Errorf("core: repl-raft is not supported on the split-domain testbed (group state lives on the cluster shard; the router would drive it from the host domain)")
		}
	}
	pool, image := tb.poolAndImage(spec.EC)
	s := &pipelineStack{tb: tb, spec: spec, image: image, pool: pool}

	switch {
	case spec.Transport == TransportQDMA:
		if err := tb.buildURingCard(s); err != nil {
			return nil, err
		}
	case spec.Transport == TransportHostOnly && spec.HostAPI == HostIOUring:
		if err := tb.buildURingClient(s); err != nil {
			return nil, err
		}
	case spec.Transport == TransportHostOnly:
		if err := tb.buildNBDClient(s); err != nil {
			return nil, err
		}
	case spec.Fanout == FanoutHostTCP:
		if err := tb.buildNBDOffload(s); err != nil {
			return nil, err
		}
	default:
		if err := tb.buildNBDCard(s); err != nil {
			return nil, err
		}
	}
	if spec.Replication == ReplRaft {
		// Route the replicated pool through the per-PG Raft backend: the
		// fan-out engine and the software client both dispatch to a router
		// bound to the stack's own client endpoint.
		sys := tb.raftSystem()
		if fan := s.fanout.Fan(); fan != nil {
			r := raft.NewRouter(sys, fan.From)
			r.Sink = tb.traceHost
			fan.Raft = r
		}
		if cl := s.fanout.Client(); cl != nil {
			r := raft.NewRouter(sys, cl.Host)
			r.Sink = tb.traceHost
			cl.Repl = r
		}
	}
	return s, nil
}

// cardNIC returns the fabric host name and network stack profile for a
// card fan-out kind.
func (tb *Testbed) cardNIC(kind FanoutKind) (string, netsim.StackCost) {
	if kind == FanoutCardHLS {
		return "fpga-hls", tb.CM.HLSStack
	}
	return "fpga-cmac", tb.CM.RTLStack
}

// buildCardSide wires the layers living on the card — fabric host, FPGA
// shell with the placement kernels, fan-out engine, and the card backend —
// shared by the QDMA and legacy-DMA card shapes.
func (tb *Testbed) buildCardSide(s *pipelineStack) (*cardBackend, error) {
	hostName, stack := tb.cardNIC(s.spec.Fanout)
	cardHost, err := tb.Fabric.AddHost(hostName, tb.CM.NICBitsPerSec, stack)
	if err != nil {
		return nil, err
	}
	// HLS designs predate DFX: static shell, no swappable RMs.
	shell, err := buildShell(tb, s.pool, s.spec.Placement == PlacementHLS)
	if err != nil {
		return nil, err
	}
	if s.spec.Placement == PlacementHLS {
		s.placement = &hlsPlacement{shell: shell, scale: tb.CM.HLSLatencyScale, prof: tb.Profile}
	} else {
		s.placement = &rtlPlacement{shell: shell, prof: tb.Profile}
	}
	fan := &Fanout{Cluster: tb.Cluster, From: cardHost, Res: tb.Res, Trace: tb.traceHost}
	s.fanout = &cardFanout{kind: s.spec.Fanout, fan: fan}
	procCost := tb.CM.CardProcessing
	if s.spec.Fanout == FanoutCardHLS {
		procCost = tb.CM.HLSCardProcessing
	}
	kernelScale := 1.0
	if s.spec.Placement == PlacementHLS {
		kernelScale = tb.CM.HLSLatencyScale
	}
	return &cardBackend{
		eng:         tb.Eng,
		cm:          tb.CM,
		shell:       shell,
		place:       s.placement,
		fan:         fan,
		image:       s.image,
		pool:        s.pool,
		procCost:    procCost,
		kernelScale: kernelScale,
		prof:        tb.Profile,
		trace:       tb.traceHost,
	}, nil
}

// uifdTenantVFs is the SR-IOV virtual-function pool every QDMA stack
// provisions for tenant-attributed traffic: thousands of tenants hash onto
// these functions' queue sets. Provisioning is pure QDMA state, so it is
// digest-invisible until a nonzero tenant actually submits.
const uifdTenantVFs = 8

// Per-tenant QoS scheduler defaults. The classes are deliberately uniform —
// the QoS axis measures isolation under equal entitlements, not a policy
// control plane. Token bucket: a byte-rate cap that clips a hog's backlog
// while leaving sparse victims untouched. dmclock: a modest guaranteed
// reservation per tenant plus a proportional share of slack, with a limit
// that stops one tenant from banking the whole device.
// The rates are sized against the simulated device: a healthy 4 KiB tenant
// bursts to roughly 10k unit/s, so the dmclock limit sits above that and
// binds only through the cost normalization — a 64 KiB hog op charges 16
// units (256 KiB charges 64), pulling the hog's effective op ceiling an
// order of magnitude or two below any victim's while leaving 4 KiB traffic
// untouched. Two effects bound how hard the limit can squeeze: below a
// victim's burst rate the victims throttle themselves (their own p99
// inflates), and no dispatch limit can preempt a large frame already
// serializing on the 10 GbE wire, so victim tails retain one in-flight
// hog-frame of head-of-line wait regardless of rate.
const (
	qosSchedCost  = 500 * sim.Nanosecond
	qosTBRate     = 512 << 20 // bytes/second per tenant
	qosTBBurst    = 1 << 20
	qosDMCResIOPS = 2000
	qosDMCLimIOPS = 20000
	qosDMCWeight  = 1.0
	// qosDMCCostBlock normalizes the dmclock IOPS terms by request size
	// (a 256 KiB op costs 64 units), so large-block hogs cannot sidestep
	// the limit.
	qosDMCCostBlock = 4096
	qosInsertCost   = 600 * sim.Nanosecond
)

// buildURingCard wires the full hardware pipeline: io_uring → DMQ → UIFD/
// QDMA → card kernels → card NIC fan-out (DeLiBA-K's shape).
func (tb *Testbed) buildURingCard(s *pipelineStack) error {
	backend, err := tb.buildCardSide(s)
	if err != nil {
		return err
	}
	qe := qdma.New(tb.Eng, qdma.DefaultConfig())
	queueKind := qdma.ReplicationQueue
	if s.spec.EC {
		queueKind = qdma.ErasureQueue
	}
	drv, err := uifd.NewDriver(tb.Eng, qe, backend, uifd.Config{
		HWQueues: s.spec.ringInstances(),
		Queue:    queueKind,
		VFs:      uifdTenantVFs,
	})
	if err != nil {
		return err
	}
	s.transport = &qdmaTransport{drv: drv}
	mqCfg := blockmq.Config{
		CPUs:      s.spec.ringInstances(),
		HWQueues:  s.spec.ringInstances(),
		TagsPerHW: 64,
		Bypass:    true, // the DeLiBA-K DMQ scheduler bypass
	}
	if s.spec.Block == BlockMQDeadline {
		mqCfg.Bypass = false
		mqCfg.Scheduler = blockmq.NewDeadlineScheduler(tb.Eng,
			1500*sim.Nanosecond, 5*sim.Millisecond)
		mqCfg.InsertCost = 600 * sim.Nanosecond
	}
	switch s.spec.QoS {
	case QoSTokenBucket:
		mqCfg.Bypass = false
		mqCfg.InsertCost = qosInsertCost
		sched := blockmq.NewTokenBucketScheduler(tb.Eng,
			qosSchedCost, qosTBRate, qosTBBurst)
		mqCfg.Scheduler = sched
		tb.QoSSched = sched
	case QoSDMClock:
		mqCfg.Bypass = false
		mqCfg.InsertCost = qosInsertCost
		sched := blockmq.NewDMClockScheduler(tb.Eng,
			qosSchedCost, blockmq.DMClockParams{
				ReservationIOPS: qosDMCResIOPS,
				LimitIOPS:       qosDMCLimIOPS,
				Weight:          qosDMCWeight,
				CostBlock:       qosDMCCostBlock,
			})
		mqCfg.Scheduler = sched
		tb.QoSSched = sched
	}
	mq, err := blockmq.New(tb.Eng, mqCfg, drv)
	if err != nil {
		return err
	}
	s.block = &dmqBlock{kind: s.spec.Block, mq: mq}
	mq.SetTraceSink(tb.traceHost)
	var target iouring.Target = &dmqTarget{eng: tb.Eng, mq: mq, mapCost: tb.CM.DKRBDMapCost,
		writeExtra: tb.CM.CardWriteOverhead, prof: tb.Profile, trace: tb.traceHost,
		bare: s.spec.Cache == CacheLSVD}
	if s.spec.Cache == CacheLSVD {
		target, err = tb.buildCacheTarget(s, target)
		if err != nil {
			return err
		}
	}
	rs, err := newRingSet(tb, s.spec, target)
	if err != nil {
		return err
	}
	s.host = &uringHost{rs: rs}
	return nil
}

// buildURingClient wires io_uring + kernel DMQ/RBD onto the software Ceph
// client (the DeLiBA-K software baseline). The DMQ/RBD kernel residency is
// folded into the ring target's map cost; there is no separate blk-mq
// instance to expose.
func (tb *Testbed) buildURingClient(s *pipelineStack) error {
	client, err := newSWClient(tb, "client-dksw")
	if err != nil {
		return err
	}
	s.block = &dmqBlock{kind: s.spec.Block}
	s.transport = hostOnly{}
	s.placement = swPlacement{}
	s.fanout = &clientFanout{client: client}
	var target iouring.Target = &radosTarget{tb: tb, client: client, image: s.image, pool: s.pool,
		mapCost: tb.CM.DKRBDMapCost, prof: tb.Profile, trace: tb.traceHost,
		bare: s.spec.Cache == CacheLSVD}
	if s.spec.Cache == CacheLSVD {
		target, err = tb.buildCacheTarget(s, target)
		if err != nil {
			return err
		}
	}
	rs, err := newRingSet(tb, s.spec, target)
	if err != nil {
		return err
	}
	s.host = &uringHost{rs: rs}
	return nil
}

// buildNBDCard wires the NBD daemon onto the card over legacy DMA
// (DeLiBA-2's shape).
func (tb *Testbed) buildNBDCard(s *pipelineStack) error {
	backend, err := tb.buildCardSide(s)
	if err != nil {
		return err
	}
	s.block = noBlock{}
	s.transport = legacyDMA{}
	s.host = &nbdHost{
		tb:       tb,
		profile:  tb.CM.D2Host,
		daemon:   tb.Eng.NewResource(1),
		procName: "d2hw-io",
		path:     &legacyCardPath{cm: tb.CM, backend: backend, prof: tb.Profile},
	}
	return nil
}

// buildNBDOffload wires the NBD daemon with card placement offload but
// host-side fan-out (DeLiBA-1's shape).
func (tb *Testbed) buildNBDOffload(s *pipelineStack) error {
	hostNIC, err := tb.Fabric.AddHost("client-d1", tb.CM.NICBitsPerSec, tb.CM.D1NetStack)
	if err != nil {
		return err
	}
	shell, err := buildShell(tb, s.pool, s.spec.Placement == PlacementHLS)
	if err != nil {
		return err
	}
	if s.spec.Placement == PlacementHLS {
		s.placement = &hlsPlacement{shell: shell, scale: tb.CM.HLSLatencyScale, prof: tb.Profile}
	} else {
		s.placement = &rtlPlacement{shell: shell, prof: tb.Profile}
	}
	fan := &Fanout{Cluster: tb.Cluster, From: hostNIC, Res: tb.Res, Trace: tb.traceHost}
	s.fanout = &hostFanout{fan: fan}
	s.block = noBlock{}
	s.transport = legacyDMA{}
	daemon := tb.Eng.NewResource(1)
	s.host = &nbdHost{
		tb:       tb,
		profile:  tb.CM.D1Host,
		daemon:   daemon,
		procName: "d1hw-io",
		path: &d1Path{tb: tb, place: s.placement, fan: fan, image: s.image,
			pool: s.pool, daemon: daemon, prof: tb.Profile},
	}
	return nil
}

// buildNBDClient wires the NBD daemon onto the user-space Ceph libraries
// (the DeLiBA-2 software baseline).
func (tb *Testbed) buildNBDClient(s *pipelineStack) error {
	client, err := newSWClient(tb, "client-d2sw")
	if err != nil {
		return err
	}
	s.block = noBlock{}
	s.transport = hostOnly{}
	s.placement = swPlacement{}
	s.fanout = &clientFanout{client: client}
	s.host = &nbdHost{
		tb:       tb,
		profile:  tb.CM.D2Host,
		daemon:   tb.Eng.NewResource(1),
		procName: "d2sw-io",
		path: &clientPath{cm: tb.CM, client: client, image: s.image,
			pool: s.pool, prof: tb.Profile},
	}
	return nil
}
