package core

import (
	"fmt"

	"repro/internal/blockmq"
	"repro/internal/fpga"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uifd"
)

// cardBackend is the FPGA-side pipeline shared by every card-bearing
// composition: once a block request reaches the card, it is mapped to
// backing objects, placed by the Placement layer's CRUSH kernel, (for EC
// writes) encoded by the RS accelerator, and fanned out to the OSD nodes
// over the card's own TCP/IP stack. The layer kinds parameterise the
// timing: the packetisation FSM cost follows the fan-out generation
// (RTL vs. HLS TCP stack) and the kernel penalty scale follows the
// placement generation.
type cardBackend struct {
	eng   *sim.Engine
	cm    CostModel
	shell *fpga.Shell
	place Placement
	fan   *Fanout
	image *rbd.Image
	pool  *rados.Pool
	// procCost is the card's fixed per-I/O pipeline stage (descriptor
	// handling + packetisation FSM) for this fan-out generation.
	procCost sim.Duration
	// kernelScale is the HLS slowdown charged on non-placement kernels
	// (the RS encoder); 1 for RTL designs.
	kernelScale float64
	// prof optionally records stage latencies.
	prof *StageProfile
	// trace records card-side spans for sampled ops (nil = off).
	trace *trace.Sink
	// pipeNextFree serializes the card's fixed per-I/O pipeline stage.
	pipeNextFree sim.Time
}

// join invokes done(first error) after n sub-operations complete.
func join(eng *sim.Engine, n int, done func(error)) func(error) {
	remaining := n
	var firstErr error
	return func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			done(firstErr)
		}
	}
}

// reservePipe books the card pipeline FSM for cost, returning the wait
// until this I/O's slot completes.
func (cb *cardBackend) reservePipe(cost sim.Duration) sim.Duration {
	now := cb.eng.Now()
	start := now
	if cb.pipeNextFree > start {
		start = cb.pipeNextFree
	}
	cb.pipeNextFree = start.Add(cost)
	return cb.pipeNextFree.Sub(now)
}

// Process implements uifd.CardBackend (the DeLiBA-K entry point).
func (cb *cardBackend) Process(req uifd.CardRequest, done func(err error)) {
	op := Read
	if req.Op == blockmq.OpWrite {
		op = Write
	}
	pattern := Seq
	if req.Flags&blockmq.FlagRandom != 0 {
		pattern = Rand
	}
	cb.process(op, pattern, req.Off, req.Len, req.Tenant, req.Trace, done)
}

// process runs the card pipeline for one block I/O. It is also called
// directly by the DeLiBA-2 stack, which reaches the card via its legacy DMA
// path instead of UIFD/QDMA.
func (cb *cardBackend) process(op OpType, pattern Pattern, off int64, n, tenant int, tr trace.Ref, done func(error)) {
	exts, err := cb.image.Extents(off, n)
	if err != nil {
		cb.eng.Schedule(0, func() { done(err) })
		return
	}
	sub := join(cb.eng, len(exts), done)
	for _, e := range exts {
		cb.processExtent(op, pattern, e, tenant, tr, sub)
	}
}

func (cb *cardBackend) processExtent(op OpType, pattern Pattern, e rbd.Extent, tenant int, tr trace.Ref, done func(error)) {
	if cb.trace != nil && tr.Sampled() {
		// The card-pipeline span contains placement, encode and fan-out;
		// re-parent so those nest under it.
		hp := cb.trace.Begin(tr, "card-pipeline")
		tr = hp.Ref()
		inner := done
		done = func(err error) {
			hp.End()
			inner(err)
		}
	}
	opts := rados.ReqOpts{Random: pattern == Rand, Tenant: tenant, Trace: tr}
	pg := cb.fan.Cluster.PGOf(cb.pool, e.Object)

	// Stage ④: the placement layer's CRUSH kernel computes the placement
	// on the card, returning its generation's kernel penalty.
	var hsel trace.H
	if cb.trace != nil && tr.Sampled() {
		hsel = cb.trace.Begin(tr, "crush-select")
	}
	cb.place.Select(pg, cb.pool.Width(), func(extra sim.Duration, err error) {
		hsel.End()
		if err != nil {
			done(err)
			return
		}
		// The Fanout recomputes the identical placement internally; the
		// accelerator charge above is the hardware time for it.
		cb.after(extra+cb.reservePipe(cb.procCost), func() {
			fanDone := func(endFan func()) func(error) {
				return func(err error) {
					endFan()
					done(err)
				}
			}
			switch {
			case op == Write && cb.pool.Kind == rados.ECPool:
				// Stage ④ continued: RS encode on the card, then shard
				// fan-out over the card NIC (stage ⑥).
				rs := cb.shell.RS
				endEnc := cb.prof.span(StageEncode)
				var henc trace.H
				if cb.trace != nil && tr.Sampled() {
					henc = cb.trace.Begin(tr, "rs-encode")
				}
				rs.Encode(e.Len, nil, func(err error) {
					henc.End()
					endEnc()
					if err != nil {
						done(err)
						return
					}
					cb.after(cb.hlsExtra(rs.Spec, 1), func() {
						cb.fan.WriteECR(cb.pool, e.Object, e.Off, e.Len, opts,
							fanDone(cb.prof.span(StageFanout)))
					})
				})
			case op == Write:
				cb.fan.WriteReplicatedR(cb.pool, e.Object, e.Off, e.Len, opts,
					fanDone(cb.prof.span(StageFanout)))
			case cb.pool.Kind == rados.ECPool:
				endFan := cb.prof.span(StageFanout)
				cb.fan.ReadECR(cb.pool, e.Object, e.Off, e.Len, opts, func(needDecode bool, err error) {
					endFan()
					if err != nil || !needDecode {
						done(err)
						return
					}
					// Degraded read: reconstruct on the card.
					var hrec trace.H
					if cb.trace != nil && tr.Sampled() {
						hrec = cb.trace.Begin(tr, "ec-reconstruct")
						hrec.Link(trace.KindDegraded, 0)
					}
					cb.shell.RS.Encode(e.Len, nil, func(err error) {
						hrec.End()
						done(err)
					})
				})
			default:
				cb.fan.ReadReplicatedR(cb.pool, e.Object, e.Off, e.Len, opts,
					fanDone(cb.prof.span(StageFanout)))
			}
		})
	})
}

// hlsExtra returns the additional latency an HLS kernel pays over the RTL
// redesign (zero for DeLiBA-K).
func (cb *cardBackend) hlsExtra(spec fpga.KernelSpec, passes int) sim.Duration {
	if cb.kernelScale <= 1 {
		return 0
	}
	return sim.Duration(float64(spec.PipelineLatency()) * (cb.kernelScale - 1) * float64(passes))
}

func (cb *cardBackend) after(d sim.Duration, fn func()) {
	if d <= 0 {
		fn()
		return
	}
	cb.eng.Schedule(d, fn)
}

// pcieTime is the legacy (pre-QDMA) host<->card transfer time for D1/D2.
func pcieTime(n int) sim.Duration {
	const legacyPCIeBps = 12e9 // Gen3 x16 with older DMA engine efficiency
	return sim.Duration(float64(n) / legacyPCIeBps * 1e9)
}

var errNoECInD1 = fmt.Errorf("core: DeLiBA-1 has no erasure-coding accelerators")
