package core

import (
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// StageProfile collects per-stage latency histograms along the I/O
// lifecycle — the profiling/tracing capability the paper's conclusion
// announces as future work ("tracing Ceph and Linux kernel operations
// related to erasure coding"). Attach one to a testbed with
// EnableProfiling before building a stack; the DeLiBA-K pipeline then
// records each operation's time in the kernel path, the placement
// accelerator, the erasure encoder, and the network fan-out.
type StageProfile struct {
	eng *sim.Engine
	// mu guards hists: on a split-domain testbed spans may record from
	// more than one shard worker goroutine.
	mu    sync.Mutex
	hists map[string]*metrics.Histogram
}

// NewStageProfile returns an empty profile.
func NewStageProfile(eng *sim.Engine) *StageProfile {
	return &StageProfile{eng: eng, hists: make(map[string]*metrics.Histogram)}
}

// EnableProfiling attaches a profile to the testbed; stacks built after
// this call record stage timings into it.
func (tb *Testbed) EnableProfiling() *StageProfile {
	if tb.Profile == nil {
		tb.Profile = NewStageProfile(tb.Eng)
	}
	return tb.Profile
}

// span starts a stage measurement; invoke the returned func at stage end.
// A nil receiver is a no-op, so call sites need no guards. Both endpoints
// read the profile's own engine clock, so the span must open AND close on
// events of that engine's domain; a span that closes after a cross-domain
// hop must use spanAcross instead.
func (sp *StageProfile) span(stage string) func() {
	if sp == nil {
		return func() {}
	}
	start := sp.eng.Now()
	return func() {
		sp.record(stage, sp.eng.Now().Sub(start))
	}
}

// spanAcross opens a stage measurement on the domain the caller currently
// executes on and lets it close on a *different* domain: the closer reads
// the canonical time of the engine it executes under. Cross-domain
// messages are posted at their canonical arrival time, so the receiving
// engine's clock at closure IS the canonical arrival — reading the
// opening domain's clock there would race with that domain's window
// worker and observe a mid-window skewed time.
func (sp *StageProfile) spanAcross(open *sim.Engine, stage string) func(close *sim.Engine) {
	if sp == nil {
		return func(*sim.Engine) {}
	}
	start := open.Now()
	return func(close *sim.Engine) {
		sp.record(stage, close.Now().Sub(start))
	}
}

func (sp *StageProfile) record(stage string, d sim.Duration) {
	sp.mu.Lock()
	h := sp.hists[stage]
	if h == nil {
		h = metrics.NewHistogram()
		sp.hists[stage] = h
	}
	h.Record(d)
	sp.mu.Unlock()
}

// Stage returns the histogram for a stage (nil if never recorded).
func (sp *StageProfile) Stage(name string) *metrics.Histogram {
	if sp == nil {
		return nil
	}
	return sp.hists[name]
}

// Stages returns the recorded stage names, sorted.
func (sp *StageProfile) Stages() []string {
	names := make([]string, 0, len(sp.hists))
	for n := range sp.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table renders the per-stage latency breakdown.
func (sp *StageProfile) Table() *metrics.Table {
	t := metrics.NewTable("I/O lifecycle stage profile",
		"stage", "ops", "mean", "p50", "p99", "max")
	for _, name := range sp.Stages() {
		h := sp.hists[name]
		t.AddRow(name, h.Count(), h.Mean().String(), h.Median().String(),
			h.Percentile(99).String(), h.Max().String())
	}
	return t
}

// Stage name constants, one per layer boundary of the stack pipeline.
// Outer spans contain inner ones (host-api ⊃ kernel ⊃ transport ⊃ the card
// stages); subtracting an inner stage from its container isolates that
// boundary's own overhead.
const (
	// StageHostAPI is the whole-request residency in the host API layer:
	// submit to completion through the ring set or the NBD daemon loop.
	StageHostAPI = "host-api round-trip"
	// StageKernel is the kernel block-layer round trip of a request: from
	// the UIFD RBD mapping through DMQ, QDMA, the card pipeline and back
	// (for host-only stacks, the kernel RBD mapping residency).
	// Subtracting the accelerator and fan-out stages isolates the kernel
	// overhead itself.
	StageKernel = "kernel+device round-trip"
	// StageCache is the LSVD write-back cache tier residency, nested
	// inside StageKernel: log append to durable ack for writes; cache
	// lookup to device read (hit) or backend fill (miss) for reads.
	StageCache = "lsvd-cache"
	// StageTransport is the host↔card transport round trip: QDMA (from
	// blk-mq dispatch to completion) or the legacy DMA crossings plus
	// card residency. Host-only stacks record no transport span.
	StageTransport = "transport round-trip"
	// StageAccel is the CRUSH placement kernel occupancy.
	StageAccel = "crush-accelerator"
	// StageEncode is the RS encoder occupancy (EC writes).
	StageEncode = "rs-encoder"
	// StageFanout is the card→OSD network round trip.
	StageFanout = "network-fanout"
)
