package core

import (
	"testing"

	"repro/internal/sim"
)

// measureQD1 runs ops sequential operations at queue depth 1 and returns
// the mean latency.
func measureQD1(t *testing.T, kind StackKind, ec bool, op OpType, pattern Pattern, size, ops int) sim.Duration {
	t.Helper()
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tb.NewStack(kind, ec)
	if err != nil {
		t.Fatal(err)
	}
	var total sim.Duration
	tb.Eng.Spawn("bench", func(p *sim.Proc) {
		rng := sim.NewRNG(1)
		for i := 0; i < ops; i++ {
			var off int64
			if pattern == Rand {
				off = rng.Int63n(tb.Cfg.ImageBytes/int64(size)) * int64(size)
			} else {
				off = int64(i*size) % (tb.Cfg.ImageBytes - int64(size))
			}
			start := p.Now()
			if err := Do(p, stack, op, pattern, off, size, i%DKInstances); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			total += p.Now().Sub(start)
		}
	})
	tb.Eng.Run()
	stack.Close()
	return total / sim.Duration(ops)
}

func TestDKHWLatencyAnchors(t *testing.T) {
	// Table II (DeLiBA-K, 4 kB replication): 40/52/64/68 µs.
	cases := []struct {
		op      OpType
		pattern Pattern
		lo, hi  sim.Duration
	}{
		{Read, Seq, 25 * sim.Microsecond, 55 * sim.Microsecond},
		{Write, Seq, 35 * sim.Microsecond, 65 * sim.Microsecond},
		{Read, Rand, 50 * sim.Microsecond, 80 * sim.Microsecond},
		{Write, Rand, 50 * sim.Microsecond, 85 * sim.Microsecond},
	}
	for _, c := range cases {
		got := measureQD1(t, StackDKHW, false, c.op, c.pattern, 4096, 40)
		if got < c.lo || got > c.hi {
			t.Errorf("DK-HW %v-%v 4kB latency = %v, want [%v, %v]",
				c.pattern, c.op, got, c.lo, c.hi)
		}
	}
}

func TestGenerationLatencyOrdering(t *testing.T) {
	// At 4 kB the paper's ordering must hold per op/pattern:
	// DK < D2 < D1 (hardware) and DK-HW < DK-SW, D2-HW < D2-SW.
	type m = map[StackKind]sim.Duration
	for _, c := range []struct {
		op      OpType
		pattern Pattern
	}{{Read, Rand}, {Write, Rand}, {Read, Seq}, {Write, Seq}} {
		lat := m{}
		for _, kind := range []StackKind{StackDKHW, StackD2HW, StackD1HW, StackDKSW, StackD2SW} {
			lat[kind] = measureQD1(t, kind, false, c.op, c.pattern, 4096, 30)
		}
		if !(lat[StackDKHW] < lat[StackD2HW] && lat[StackD2HW] < lat[StackD1HW]) {
			t.Errorf("%v-%v: HW ordering violated: DK=%v D2=%v D1=%v",
				c.pattern, c.op, lat[StackDKHW], lat[StackD2HW], lat[StackD1HW])
		}
		if lat[StackDKHW] >= lat[StackDKSW] {
			t.Errorf("%v-%v: DK-HW (%v) not faster than DK-SW (%v)",
				c.pattern, c.op, lat[StackDKHW], lat[StackDKSW])
		}
		if lat[StackDKSW] >= lat[StackD2SW] {
			t.Errorf("%v-%v: DK-SW (%v) not faster than D2-SW (%v)",
				c.pattern, c.op, lat[StackDKSW], lat[StackD2SW])
		}
	}
}

func TestSoftwareBaselineAnchors(t *testing.T) {
	// Fig 3: 4 kB random read ~85 µs (DK-SW) vs ~130 µs (D2-SW);
	// random write ~80 µs vs ~98 µs.
	rrDK := measureQD1(t, StackDKSW, false, Read, Rand, 4096, 40)
	rrD2 := measureQD1(t, StackD2SW, false, Read, Rand, 4096, 40)
	rwDK := measureQD1(t, StackDKSW, false, Write, Rand, 4096, 40)
	rwD2 := measureQD1(t, StackD2SW, false, Write, Rand, 4096, 40)
	check := func(name string, got, want sim.Duration) {
		lo := want * 7 / 10
		hi := want * 13 / 10
		if got < lo || got > hi {
			t.Errorf("%s = %v, want ~%v (±30%%)", name, got, want)
		}
	}
	check("DK-SW rand read", rrDK, 85*sim.Microsecond)
	check("D2-SW rand read", rrD2, 130*sim.Microsecond)
	check("DK-SW rand write", rwDK, 80*sim.Microsecond)
	check("D2-SW rand write", rwD2, 98*sim.Microsecond)
}

func TestECFasterThanReplicationOnDK(t *testing.T) {
	// Table II: DeLiBA-K EC latencies (38/47/59/60) are slightly below the
	// replication ones (40/52/64/68).
	for _, c := range []struct {
		op      OpType
		pattern Pattern
	}{{Write, Rand}, {Write, Seq}} {
		repl := measureQD1(t, StackDKHW, false, c.op, c.pattern, 4096, 30)
		ec := measureQD1(t, StackDKHW, true, c.op, c.pattern, 4096, 30)
		// The paper's EC latencies sit at or just below replication's; our
		// 2-replica testbed narrows the byte-volume gap, so allow EC to
		// land within 20% (EXPERIMENTS.md discusses the residual).
		if ec > repl*120/100 {
			t.Errorf("%v-%v: EC latency %v ≫ replication %v", c.pattern, c.op, ec, repl)
		}
	}
}

func TestD1RejectsEC(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NewStack(StackD1HW, true); err == nil {
		t.Fatal("DeLiBA-1 EC stack built; the paper says D1 had no EC accelerators")
	}
}

func TestSeqFasterThanRand(t *testing.T) {
	for _, kind := range []StackKind{StackDKHW, StackDKSW} {
		seq := measureQD1(t, kind, false, Read, Seq, 4096, 30)
		rand := measureQD1(t, kind, false, Read, Rand, 4096, 30)
		if seq >= rand {
			t.Errorf("%v: seq read (%v) not faster than rand read (%v)", kind, seq, rand)
		}
	}
}

func TestLargerBlocksHigherLatency(t *testing.T) {
	small := measureQD1(t, StackDKHW, false, Write, Seq, 4096, 20)
	big := measureQD1(t, StackDKHW, false, Write, Seq, 131072, 20)
	if big <= small {
		t.Errorf("128kB write (%v) not slower than 4kB (%v)", big, small)
	}
}

func TestStackNames(t *testing.T) {
	names := map[StackKind]string{
		StackDKHW: "deliba-k-hw",
		StackD2HW: "deliba-2-hw",
		StackD1HW: "deliba-1-hw",
		StackDKSW: "deliba-k-sw",
		StackD2SW: "deliba-2-sw",
	}
	for kind, want := range names {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
		tb, err := NewTestbed(DefaultTestbedConfig())
		if err != nil {
			t.Fatal(err)
		}
		s, err := tb.NewStack(kind, false)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != want {
			t.Errorf("stack name = %q, want %q", s.Name(), want)
		}
		s.Close()
	}
}
