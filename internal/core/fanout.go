package core

import (
	"fmt"

	"repro/internal/crush"
	"repro/internal/netsim"
	"repro/internal/rados"
	"repro/internal/sim"
)

// Fanout issues object operations from a client-side endpoint directly to
// the acting OSDs — the DeLiBA protocol. Unlike the software Ceph baseline
// (rados.Client), there is no primary-copy hop: the client (host CPU for
// DeLiBA-1, FPGA card for DeLiBA-2/-K) replicates or shards itself and
// talks to every OSD in parallel.
type Fanout struct {
	Cluster *rados.Cluster
	From    *netsim.Host
}

// errOf converts a rados.Result to an error.
func errOf(r rados.Result) error { return r.Err }

// zeroPool avoids per-op payload allocation on the timing-only fan-out
// paths (stores only use the length).
var zeroPool = make([]byte, 1<<20)

// zeros returns an n-byte zero slice, shared when it fits the pool.
func zeros(n int) []byte {
	if n <= len(zeroPool) {
		return zeroPool[:n]
	}
	return make([]byte, n)
}

// join invokes done(first error) after n sub-operations complete.
func join(eng *sim.Engine, n int, done func(error)) func(error) {
	remaining := n
	var firstErr error
	return func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			done(firstErr)
		}
	}
}

// WriteReplicated sends n bytes to every up member of the object's acting
// set in parallel and completes when all acks return.
func (f *Fanout) WriteReplicated(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	c := f.Cluster
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(err)
		return
	}
	var up []int
	for _, o := range acting {
		if o != crush.ItemNone && c.OSDs[o].Up() {
			up = append(up, o)
		}
	}
	if len(up) == 0 {
		done(fmt.Errorf("core: pg for %q has no up replicas", obj))
		return
	}
	sub := join(c.Eng, len(up), done)
	for _, o := range up {
		o := o
		node := c.NodeOf(o)
		c.Fabric.Send(f.From, node, rados.HdrBytes+n, func() {
			c.OSDs[o].SubmitOpts(opts, rados.OpWrite, obj, off, zeros(n), 0, func(r rados.Result) {
				c.Fabric.Send(node, f.From, rados.HdrBytes, func() { sub(errOf(r)) })
			})
		})
	}
}

// ReadReplicated fetches n bytes from the acting primary.
func (f *Fanout) ReadReplicated(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	c := f.Cluster
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(err)
		return
	}
	primary, ok := c.PrimaryFor(acting)
	if !ok {
		done(fmt.Errorf("core: pg for %q has no up replicas", obj))
		return
	}
	node := c.NodeOf(primary)
	c.Fabric.Send(f.From, node, rados.HdrBytes, func() {
		c.OSDs[primary].SubmitOpts(opts, rados.OpRead, obj, off, nil, n, func(r rados.Result) {
			c.Fabric.Send(node, f.From, rados.HdrBytes+n, func() { done(errOf(r)) })
		})
	})
}

// WriteEC sends one shard of size ceil(n/k) to each up acting rank in
// parallel (the client has already erasure-encoded the stripe).
func (f *Fanout) WriteEC(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	c := f.Cluster
	if pool.Kind != rados.ECPool {
		done(fmt.Errorf("core: WriteEC on non-EC pool %q", pool.Name))
		return
	}
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(err)
		return
	}
	shardSize := (n + pool.K - 1) / pool.K
	var targets []int
	for _, o := range acting {
		if o != crush.ItemNone && c.OSDs[o].Up() {
			targets = append(targets, o)
		}
	}
	if len(targets) < pool.K {
		done(fmt.Errorf("core: pg for %q has %d up shards, need >= %d", obj, len(targets), pool.K))
		return
	}
	sub := join(c.Eng, len(targets), done)
	for rank, o := range acting {
		if o == crush.ItemNone || !c.OSDs[o].Up() {
			continue
		}
		o := o
		key := fmt.Sprintf("%s:%d.s%d", obj, off, rank)
		node := c.NodeOf(o)
		c.Fabric.Send(f.From, node, rados.HdrBytes+shardSize, func() {
			c.OSDs[o].SubmitOpts(opts, rados.OpWrite, key, 0, zeros(shardSize), 0, func(r rados.Result) {
				c.Fabric.Send(node, f.From, rados.HdrBytes, func() { sub(errOf(r)) })
			})
		})
	}
}

// ReadEC gathers k shards in parallel (data ranks preferred) and completes
// when the slowest arrives. needDecode is reported so the caller can charge
// reconstruction when parity shards were needed.
func (f *Fanout) ReadEC(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(needDecode bool, err error)) {
	c := f.Cluster
	if pool.Kind != rados.ECPool {
		done(false, fmt.Errorf("core: ReadEC on non-EC pool %q", pool.Name))
		return
	}
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(false, err)
		return
	}
	shardSize := (n + pool.K - 1) / pool.K
	type src struct{ rank, osd int }
	var srcs []src
	for rank := 0; rank < pool.K && len(srcs) < pool.K; rank++ {
		if o := acting[rank]; o != crush.ItemNone && c.OSDs[o].Up() {
			srcs = append(srcs, src{rank, o})
		}
	}
	needDecode := len(srcs) < pool.K
	for rank := pool.K; rank < pool.K+pool.M && len(srcs) < pool.K; rank++ {
		if o := acting[rank]; o != crush.ItemNone && c.OSDs[o].Up() {
			srcs = append(srcs, src{rank, o})
		}
	}
	if len(srcs) < pool.K {
		done(needDecode, fmt.Errorf("core: pg for %q has too few up shards", obj))
		return
	}
	sub := join(c.Eng, len(srcs), func(err error) { done(needDecode, err) })
	for _, s := range srcs {
		s := s
		key := fmt.Sprintf("%s:%d.s%d", obj, off, s.rank)
		node := c.NodeOf(s.osd)
		c.Fabric.Send(f.From, node, rados.HdrBytes, func() {
			c.OSDs[s.osd].SubmitOpts(opts, rados.OpRead, key, 0, nil, shardSize, func(r rados.Result) {
				c.Fabric.Send(node, f.From, rados.HdrBytes+shardSize, func() { sub(errOf(r)) })
			})
		})
	}
}
