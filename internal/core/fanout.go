package core

import (
	"fmt"

	"repro/internal/crush"
	"repro/internal/netsim"
	"repro/internal/rados"
	"repro/internal/raft"
	"repro/internal/trace"
)

// Fanout issues object operations from a client-side endpoint directly to
// the acting OSDs — the DeLiBA protocol. Unlike the software Ceph baseline
// (rados.Client), there is no primary-copy hop: the client (host CPU for
// DeLiBA-1, FPGA card for DeLiBA-2/-K) replicates or shards itself and
// talks to every OSD in parallel.
//
// The issue paths are allocation-free in steady state: per-operation state
// lives in pooled op structs whose callback closures are bound once at
// construction, acting-set filtering reuses a scratch slice, and EC shard
// keys are built with the rados append-style builders. Like the engine it
// feeds, a Fanout is single-threaded; its freelists and scratch buffers
// are unsynchronised on purpose.
type Fanout struct {
	Cluster *rados.Cluster
	From    *netsim.Host
	// Res, when non-nil, arms the resilient entry points (the *R methods in
	// resilience.go): deadlines, retries and read failover.
	Res *Resilience
	// Trace, when non-nil, records a per-target span (issue → ack) for
	// sampled ops, so the critical path can name the slowest replica/shard.
	Trace *trace.Sink
	// Raft, when non-nil, routes replicated I/O for its pool through the
	// per-PG Raft backend (repl-raft) instead of the primary-copy fan-out;
	// other pools and EC stripes keep the paths below.
	Raft *raft.Router

	up       []int // scratch: up members of the current acting set
	replFree []*replOp
	readFree []*readOp
	ecwFree  []*ecWriteOp
	ecrFree  []*ecReadOp
}

// zeroPool avoids per-op payload allocation on the timing-only fan-out
// paths (stores only use the length). zeros hands out overlapping views of
// this one backing array, so the payload contract on rados.ObjectStore is
// load-bearing here: stores must treat written payloads as read-only and
// must not retain them (see store.go); a store that scribbled on a zeros()
// view would corrupt every concurrent fan-out write sharing the pool.
var zeroPool = make([]byte, 1<<20)

// zeros returns an n-byte zero slice, shared when it fits the pool; larger
// requests grow the pool (amortised) so repeated jumbo ops stay alloc-free.
func zeros(n int) []byte {
	if n > len(zeroPool) {
		zeroPool = make([]byte, n)
	}
	return zeroPool[:n]
}

// --- replicated write --------------------------------------------------

// replOp is the in-flight state of one replicated fan-out write. Ops are
// pooled on the Fanout; each holds its own pooled targets whose closures
// were bound to the target struct once, so reissue costs no allocation.
type replOp struct {
	f         *Fanout
	opts      rados.ReqOpts
	obj       string
	off, n    int
	remaining int
	firstErr  error
	done      func(error)
	targets   []*replTarget
}

// replTarget is one replica destination of a replOp. send fires on fabric
// arrival at the OSD's node, onResult when the OSD completes, ack when the
// ack hops back to the client.
type replTarget struct {
	op   *replOp
	osd  int
	node *netsim.Host
	err  error
	span trace.H

	send     func()
	onResult func(rados.Result)
	ack      func()
}

// target returns the i-th pooled target, growing the pool on first use.
func (op *replOp) target(i int) *replTarget {
	for len(op.targets) <= i {
		t := &replTarget{op: op}
		t.send = func() {
			o := t.op
			sopts := o.opts
			if t.span.On() {
				sopts.Trace = t.span.Ref()
			}
			o.f.Cluster.OSDs[t.osd].SubmitOpts(sopts, rados.OpWrite, o.obj, o.off, zeros(o.n), 0, t.onResult)
		}
		t.onResult = func(r rados.Result) {
			t.err = r.Err
			o := t.op
			o.f.Cluster.Fabric.Send(t.node, o.f.From, rados.HdrBytes, t.ack)
		}
		t.ack = func() {
			t.span.End()
			t.span = trace.H{}
			t.op.finish(t.err)
		}
		op.targets = append(op.targets, t)
	}
	return op.targets[i]
}

// finish accounts one completed replica; the last one recycles the op and
// then invokes done (in that order — done may immediately issue a new op
// that reuses this struct).
func (op *replOp) finish(err error) {
	if err != nil && op.firstErr == nil {
		op.firstErr = err
	}
	op.remaining--
	if op.remaining == 0 {
		done, ferr := op.done, op.firstErr
		op.done, op.firstErr, op.obj = nil, nil, ""
		op.f.replFree = append(op.f.replFree, op)
		done(ferr)
	}
}

func (f *Fanout) getRepl() *replOp {
	if n := len(f.replFree); n > 0 {
		op := f.replFree[n-1]
		f.replFree[n-1] = nil
		f.replFree = f.replFree[:n-1]
		return op
	}
	return &replOp{f: f}
}

// upSet filters the acting set's up members into the scratch slice.
func (f *Fanout) upSet(acting []int) []int {
	c := f.Cluster
	f.up = f.up[:0]
	for _, o := range acting {
		if o != crush.ItemNone && c.OSDs[o].Up() {
			f.up = append(f.up, o)
		}
	}
	return f.up
}

// WriteReplicated sends n bytes to every up member of the object's acting
// set in parallel and completes when all acks return. With repl-raft
// selected the write is instead routed to the object's Raft group and
// completes when the entry commits on a majority.
func (f *Fanout) WriteReplicated(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	if f.Raft != nil && pool == f.Raft.Sys.Pool {
		f.Raft.Write(obj, off, n, opts, done)
		return
	}
	c := f.Cluster
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(err)
		return
	}
	up := f.upSet(acting)
	if len(up) == 0 {
		done(fmt.Errorf("core: pg for %q has no up replicas", obj))
		return
	}
	op := f.getRepl()
	op.opts, op.obj, op.off, op.n = opts, obj, off, n
	op.remaining, op.firstErr, op.done = len(up), nil, done
	for i, o := range up {
		t := op.target(i)
		t.osd, t.node, t.err = o, c.NodeOf(o), nil
		t.span = trace.H{}
		if f.Trace != nil && opts.Trace.Sampled() {
			t.span = f.Trace.Begin(opts.Trace, "replica-write")
		}
		c.Fabric.Send(f.From, t.node, rados.HdrBytes+n, t.send)
	}
}

// --- replicated read ---------------------------------------------------

// readOp is the in-flight state of one primary read.
type readOp struct {
	f    *Fanout
	opts rados.ReqOpts
	obj  string
	off  int
	n    int
	osd  int
	node *netsim.Host
	err  error
	span trace.H
	done func(error)

	send     func()
	onResult func(rados.Result)
	ack      func()
}

func (f *Fanout) getRead() *readOp {
	if n := len(f.readFree); n > 0 {
		op := f.readFree[n-1]
		f.readFree[n-1] = nil
		f.readFree = f.readFree[:n-1]
		return op
	}
	op := &readOp{f: f}
	op.send = func() {
		sopts := op.opts
		if op.span.On() {
			sopts.Trace = op.span.Ref()
		}
		op.f.Cluster.OSDs[op.osd].SubmitOpts(sopts, rados.OpRead, op.obj, op.off, nil, op.n, op.onResult)
	}
	op.onResult = func(r rados.Result) {
		op.err = r.Err
		op.f.Cluster.Fabric.Send(op.node, op.f.From, rados.HdrBytes+op.n, op.ack)
	}
	op.ack = func() {
		op.span.End()
		op.span = trace.H{}
		done, err := op.done, op.err
		op.done, op.err, op.obj = nil, nil, ""
		op.f.readFree = append(op.f.readFree, op)
		done(err)
	}
	return op
}

// ReadReplicated fetches n bytes from the acting primary — or, with
// repl-raft selected, from the group leader under its lease.
func (f *Fanout) ReadReplicated(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	if f.Raft != nil && pool == f.Raft.Sys.Pool {
		f.Raft.Read(obj, off, n, opts, done)
		return
	}
	c := f.Cluster
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(err)
		return
	}
	primary, ok := c.PrimaryFor(acting)
	if !ok {
		done(fmt.Errorf("core: pg for %q has no up replicas", obj))
		return
	}
	op := f.getRead()
	op.opts, op.obj, op.off, op.n = opts, obj, off, n
	op.osd, op.node, op.err, op.done = primary, c.NodeOf(primary), nil, done
	op.span = trace.H{}
	if f.Trace != nil && opts.Trace.Sampled() {
		op.span = f.Trace.Begin(opts.Trace, "replica-read")
	}
	c.Fabric.Send(f.From, op.node, rados.HdrBytes, op.send)
}

// --- EC write ----------------------------------------------------------

// ecWriteOp is the in-flight state of one EC stripe write.
type ecWriteOp struct {
	f         *Fanout
	opts      rados.ReqOpts
	shardSize int
	remaining int
	firstErr  error
	done      func(error)
	targets   []*ecTarget
}

// ecTarget is one shard destination. key is rebuilt into keyBuf per issue;
// the string conversion at the store boundary is the EC path's one
// remaining per-shard allocation.
type ecTarget struct {
	op     *ecWriteOp
	osd    int
	node   *netsim.Host
	key    string
	keyBuf []byte
	err    error
	span   trace.H

	send     func()
	onResult func(rados.Result)
	ack      func()
}

func (op *ecWriteOp) target(i int) *ecTarget {
	for len(op.targets) <= i {
		t := &ecTarget{op: op}
		t.send = func() {
			o := t.op
			sopts := o.opts
			if t.span.On() {
				sopts.Trace = t.span.Ref()
			}
			o.f.Cluster.OSDs[t.osd].SubmitOpts(sopts, rados.OpWrite, t.key, 0, zeros(o.shardSize), 0, t.onResult)
		}
		t.onResult = func(r rados.Result) {
			t.err = r.Err
			o := t.op
			o.f.Cluster.Fabric.Send(t.node, o.f.From, rados.HdrBytes, t.ack)
		}
		t.ack = func() {
			t.span.End()
			t.span = trace.H{}
			t.op.finish(t.err)
		}
		op.targets = append(op.targets, t)
	}
	return op.targets[i]
}

func (op *ecWriteOp) finish(err error) {
	if err != nil && op.firstErr == nil {
		op.firstErr = err
	}
	op.remaining--
	if op.remaining == 0 {
		done, ferr := op.done, op.firstErr
		op.done, op.firstErr = nil, nil
		for _, t := range op.targets {
			t.key = ""
		}
		op.f.ecwFree = append(op.f.ecwFree, op)
		done(ferr)
	}
}

func (f *Fanout) getECWrite() *ecWriteOp {
	if n := len(f.ecwFree); n > 0 {
		op := f.ecwFree[n-1]
		f.ecwFree[n-1] = nil
		f.ecwFree = f.ecwFree[:n-1]
		return op
	}
	return &ecWriteOp{f: f}
}

// WriteEC sends one shard of size ceil(n/k) to each up acting rank in
// parallel (the client has already erasure-encoded the stripe).
func (f *Fanout) WriteEC(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(error)) {
	c := f.Cluster
	if pool.Kind != rados.ECPool {
		done(fmt.Errorf("core: WriteEC on non-EC pool %q", pool.Name))
		return
	}
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(err)
		return
	}
	shardSize := (n + pool.K - 1) / pool.K
	upCount := 0
	for _, o := range acting {
		if o != crush.ItemNone && c.OSDs[o].Up() {
			upCount++
		}
	}
	if upCount < pool.K {
		done(fmt.Errorf("core: pg for %q has %d up shards, need >= %d", obj, upCount, pool.K))
		return
	}
	op := f.getECWrite()
	op.opts, op.shardSize = opts, shardSize
	op.remaining, op.firstErr, op.done = upCount, nil, done
	i := 0
	for rank, o := range acting {
		if o == crush.ItemNone || !c.OSDs[o].Up() {
			continue
		}
		t := op.target(i)
		i++
		t.keyBuf = rados.AppendShardKey(t.keyBuf[:0], obj, off, rank)
		t.key = string(t.keyBuf)
		t.osd, t.node, t.err = o, c.NodeOf(o), nil
		t.span = trace.H{}
		if f.Trace != nil && opts.Trace.Sampled() {
			t.span = f.Trace.Begin(opts.Trace, "ec-shard-write")
		}
		c.Fabric.Send(f.From, t.node, rados.HdrBytes+shardSize, t.send)
	}
}

// --- EC read -----------------------------------------------------------

// ecReadOp is the in-flight state of one EC stripe read (k-shard gather).
type ecReadOp struct {
	f          *Fanout
	opts       rados.ReqOpts
	shardSize  int
	remaining  int
	needDecode bool
	firstErr   error
	done       func(needDecode bool, err error)
	targets    []*ecReadTarget
}

type ecReadTarget struct {
	op     *ecReadOp
	osd    int
	node   *netsim.Host
	key    string
	keyBuf []byte
	err    error
	span   trace.H

	send     func()
	onResult func(rados.Result)
	ack      func()
}

func (op *ecReadOp) target(i int) *ecReadTarget {
	for len(op.targets) <= i {
		t := &ecReadTarget{op: op}
		t.send = func() {
			o := t.op
			sopts := o.opts
			if t.span.On() {
				sopts.Trace = t.span.Ref()
			}
			o.f.Cluster.OSDs[t.osd].SubmitOpts(sopts, rados.OpRead, t.key, 0, nil, o.shardSize, t.onResult)
		}
		t.onResult = func(r rados.Result) {
			t.err = r.Err
			o := t.op
			o.f.Cluster.Fabric.Send(t.node, o.f.From, rados.HdrBytes+o.shardSize, t.ack)
		}
		t.ack = func() {
			t.span.End()
			t.span = trace.H{}
			t.op.finish(t.err)
		}
		op.targets = append(op.targets, t)
	}
	return op.targets[i]
}

func (op *ecReadOp) finish(err error) {
	if err != nil && op.firstErr == nil {
		op.firstErr = err
	}
	op.remaining--
	if op.remaining == 0 {
		done, ferr, nd := op.done, op.firstErr, op.needDecode
		op.done, op.firstErr = nil, nil
		for _, t := range op.targets {
			t.key = ""
		}
		op.f.ecrFree = append(op.f.ecrFree, op)
		done(nd, ferr)
	}
}

func (f *Fanout) getECRead() *ecReadOp {
	if n := len(f.ecrFree); n > 0 {
		op := f.ecrFree[n-1]
		f.ecrFree[n-1] = nil
		f.ecrFree = f.ecrFree[:n-1]
		return op
	}
	return &ecReadOp{f: f}
}

// ReadEC gathers k shards in parallel (data ranks preferred) and completes
// when the slowest arrives. needDecode is reported so the caller can charge
// reconstruction when parity shards were needed.
func (f *Fanout) ReadEC(pool *rados.Pool, obj string, off, n int, opts rados.ReqOpts, done func(needDecode bool, err error)) {
	c := f.Cluster
	if pool.Kind != rados.ECPool {
		done(false, fmt.Errorf("core: ReadEC on non-EC pool %q", pool.Name))
		return
	}
	acting, err := c.ActingSet(pool, c.PGOf(pool, obj))
	if err != nil {
		done(false, err)
		return
	}
	shardSize := (n + pool.K - 1) / pool.K
	op := f.getECRead()
	op.opts, op.shardSize = opts, shardSize

	// Choose k source ranks, preferring the data shards so no decode is
	// needed on the healthy path. Targets double as the source list.
	srcs := 0
	for rank := 0; rank < pool.K && srcs < pool.K; rank++ {
		if o := acting[rank]; o != crush.ItemNone && c.OSDs[o].Up() {
			t := op.target(srcs)
			srcs++
			t.keyBuf = rados.AppendShardKey(t.keyBuf[:0], obj, off, rank)
			t.osd = o
		}
	}
	op.needDecode = srcs < pool.K
	for rank := pool.K; rank < pool.K+pool.M && srcs < pool.K; rank++ {
		if o := acting[rank]; o != crush.ItemNone && c.OSDs[o].Up() {
			t := op.target(srcs)
			srcs++
			t.keyBuf = rados.AppendShardKey(t.keyBuf[:0], obj, off, rank)
			t.osd = o
		}
	}
	if srcs < pool.K {
		nd := op.needDecode
		op.f.ecrFree = append(op.f.ecrFree, op)
		done(nd, fmt.Errorf("core: pg for %q has too few up shards", obj))
		return
	}
	op.remaining, op.firstErr, op.done = srcs, nil, done
	for i := 0; i < srcs; i++ {
		t := op.targets[i]
		t.key = string(t.keyBuf)
		t.node, t.err = c.NodeOf(t.osd), nil
		t.span = trace.H{}
		if f.Trace != nil && opts.Trace.Sampled() {
			t.span = f.Trace.Begin(opts.Trace, "ec-shard-read")
		}
		c.Fabric.Send(f.From, t.node, rados.HdrBytes, t.send)
	}
}
