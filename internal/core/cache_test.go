package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestParseCacheSpec covers the '+'-extended named-base form, the cache
// tokens and size options, and the canonical-name suffix.
func TestParseCacheSpec(t *testing.T) {
	spec, err := ParseStackSpec("deliba-k-hw+cache-lsvd")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cache != CacheLSVD {
		t.Errorf("cache = %v, want %v", spec.Cache, CacheLSVD)
	}
	if spec.Name != "deliba-k-hw+cache-lsvd" {
		t.Errorf("name = %q, want the compound form", spec.Name)
	}
	base, _ := Spec(StackDKHW)
	if spec.Transport != base.Transport || spec.Placement != base.Placement {
		t.Errorf("named base layers not inherited: %+v", spec)
	}

	spec, err = ParseStackSpec("deliba-k-sw+cache-lsvd+cachelog=64+cacheread=16")
	if err != nil {
		t.Fatal(err)
	}
	if spec.CacheLogMB != 64 || spec.CacheReadMB != 16 {
		t.Errorf("cache sizes not applied: %+v", spec)
	}

	// Token lists pick up the cache like any other layer, and the
	// canonical name records it.
	spec, err = ParseStackSpec("iouring,dmq-bypass,qdma,rtl-crush,card-rtl,cache-lsvd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(spec.Name, "+cache-lsvd") {
		t.Errorf("canonical name %q lacks the cache suffix", spec.Name)
	}

	// cache-none is accepted and changes nothing, so existing spellings
	// stay digest-compatible.
	spec, err = ParseStackSpec("deliba-k-hw+cache-none")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cache != CacheNone {
		t.Errorf("cache = %v, want %v", spec.Cache, CacheNone)
	}

	if _, err := ParseStackSpec("cache-lsvd+deliba-k-hw"); err == nil {
		t.Error("stack name accepted in non-leading position")
	}
	if _, err := ParseStackSpec("deliba-k-hw+cachelog=lots"); err == nil {
		t.Error("unparsable cachelog accepted")
	}
}

// TestValidateRejectsCacheCombos pins the rejection messages for cache
// placements the modelled hardware cannot form.
func TestValidateRejectsCacheCombos(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"cache-on-nbd-d2hw", "deliba-2-hw+cache-lsvd", "runs in user space"},
		{"cache-on-nbd-d2sw", "deliba-2-sw+cache-lsvd", "runs in user space"},
		{"cache-on-nbd-d1hw", "deliba-1-hw+cache-lsvd", "runs in user space"},
		{"cache-sizes-without-cache", "deliba-k-hw+cachelog=64", "require cache-lsvd"},
		{"negative-cache-size", "deliba-k-hw+cache-lsvd+cachelog=-1", "negative cache size"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseStackSpec(tc.spec); err == nil {
				t.Fatalf("ParseStackSpec(%q) accepted", tc.spec)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Direct spec structs reach the block-layer rule (the parser's other
	// pairing rules would fire first on any spellable token list).
	s := StackSpec{HostAPI: HostIOUring, Block: BlockNone, Transport: TransportHostOnly,
		Placement: PlacementSoftware, Fanout: FanoutHostTCP, Cache: CacheLSVD}
	if err := s.Validate(); err == nil {
		t.Error("cache over noblock accepted")
	} else if !strings.Contains(err.Error(), "requires a kernel block layer") {
		t.Errorf("error %q does not name the block-layer conflict", err)
	}
	if err := (StackSpec{CacheVerify: true}).Validate(); err == nil {
		t.Error("verify option without cache accepted")
	}
}

// readLatency builds the stack, writes one block, reads it back and
// returns the read's completion latency.
func readLatency(t *testing.T, tb *Testbed, spec string) sim.Duration {
	t.Helper()
	sp, err := ParseStackSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tb.BuildStack(sp)
	if err != nil {
		t.Fatal(err)
	}
	var lat sim.Duration
	tb.Eng.Spawn("io", func(p *sim.Proc) {
		if err := Do(p, stack, Write, Rand, 0, 4096, 0); err != nil {
			t.Errorf("write: %v", err)
		}
		start := p.Now()
		if err := Do(p, stack, Read, Rand, 0, 4096, 0); err != nil {
			t.Errorf("read: %v", err)
		}
		lat = p.Now().Sub(start)
	})
	tb.Eng.Run()
	if cache := CacheOf(stack); sp.Cache == CacheLSVD {
		if cache == nil {
			t.Fatal("cache-lsvd stack exposes no cache")
		}
		if st := cache.Stats(); st.Hits != 1 || st.Misses != 0 {
			t.Errorf("cache stats hits=%d misses=%d, want 1/0 (log-resident read)", st.Hits, st.Misses)
		}
	} else if cache != nil {
		t.Error("cache-none stack exposes a cache")
	}
	stack.Close()
	return lat
}

// TestCacheHitBeatsDirectPath wires the cache tier into both io_uring
// shapes and checks a log-resident read completes well under the direct
// path's cluster round trip.
func TestCacheHitBeatsDirectPath(t *testing.T) {
	for _, base := range []string{"deliba-k-hw", "deliba-k-sw"} {
		base := base
		t.Run(base, func(t *testing.T) {
			cfg := DefaultTestbedConfig()
			cfg.Jitter = false
			direct, err := NewTestbed(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := NewTestbed(cfg)
			if err != nil {
				t.Fatal(err)
			}
			lDirect := readLatency(t, direct, base)
			lCached := readLatency(t, cached, base+"+cache-lsvd")
			if lCached*2 >= lDirect {
				t.Errorf("cache hit %v not well under direct %v", lCached, lDirect)
			}
		})
	}
}
