package core

import (
	"repro/internal/blockmq"
	"repro/internal/iouring"
	"repro/internal/lsvd"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file wires the optional LSVD write-back cache tier (internal/lsvd)
// into the stack pipeline. The cache sits between the kernel block layer
// and the transport: ring submissions pay the RBD map cost once, then
// enter the cache; hits complete from the NVMe-class log device, misses
// ride the stack's own (bare) ring target down the normal data path, and
// the background flusher drains sealed segments to RADOS through a
// dedicated software client that reuses the testbed's retry policy.

// cacheTarget is the ring target for cache-lsvd stacks. It owns the
// kernel span and the RBD map cost; the wrapped inner target is built
// bare so neither is charged twice.
type cacheTarget struct {
	eng     *sim.Engine
	cache   *lsvd.Cache
	mapCost sim.Duration
	prof    *StageProfile
	trace   *trace.Sink
}

func (t *cacheTarget) Submit(req iouring.Request, complete func(res int32)) {
	endKernel := t.prof.span(StageKernel)
	length := req.Len
	tr := req.Trace
	var hk trace.H
	if t.trace != nil && tr.Sampled() {
		// Kernel span covers map cost + cache residency; the cache span
		// and any miss-fill descent nest under it.
		hk = t.trace.Begin(tr, "kernel")
		tr = hk.Ref()
	}
	t.eng.Schedule(t.mapCost, func() {
		endCache := t.prof.span(StageCache)
		ctr := tr
		var hc trace.H
		if t.trace != nil && tr.Sampled() {
			hc = t.trace.Begin(tr, "lsvd-cache")
			ctr = hc.Ref()
		}
		done := func(err error) {
			endCache()
			endKernel()
			hc.End()
			hk.End()
			if err != nil {
				complete(iouring.ResEIO)
				return
			}
			complete(int32(length))
		}
		if req.Op == iouring.OpWrite {
			t.cache.WriteTraced(req.Off, int(req.Len), ctr, done)
		} else {
			t.cache.ReadTraced(req.Off, int(req.Len), ctr, done)
		}
	})
}

// cacheBackend adapts the stack's data path to lsvd.Backend: read-around
// miss fills ride the bare inner ring target (the card pipeline or the
// software client, whichever the spec composed), while flush write-back
// goes through its own rados client so background draining shares the
// host NIC and the cluster's retry policy without occupying the
// foreground rings.
type cacheBackend struct {
	inner  iouring.Target
	client *rados.Client
	image  *rbd.Image
	pool   *rados.Pool
}

func (b *cacheBackend) ReadMiss(off int64, n int, done func(error)) {
	b.ReadMissTraced(off, n, trace.Ref{}, done)
}

// ReadMissTraced implements lsvd.TracedBackend: sampled miss fills carry
// the caller's trace context down the inner data path.
func (b *cacheBackend) ReadMissTraced(off int64, n int, tr trace.Ref, done func(error)) {
	req := iouring.Request{
		Op:      iouring.OpRead,
		Off:     off,
		Len:     uint32(n),
		RWFlags: blockmq.FlagRandom,
		Trace:   tr,
	}
	b.inner.Submit(req, func(res int32) {
		done(errIO(res))
	})
}

func (b *cacheBackend) FlushExtent(p *sim.Proc, off int64, n int) error {
	opts := rados.ReqOpts{Random: true}
	return b.image.VisitExtents(off, n, true, func(e rbd.Extent) error {
		return b.client.WriteOpts(p, b.pool, e.Object, e.Off, zeros(e.Len), opts)
	})
}

// buildCacheTarget wires the cache tier over a bare inner target: the
// flush client, the cache geometry resolved from the spec, and the
// wrapping ring target.
func (tb *Testbed) buildCacheTarget(s *pipelineStack, inner iouring.Target) (*cacheTarget, error) {
	flush, err := newSWClient(tb, "cache-flush")
	if err != nil {
		return nil, err
	}
	cfg := lsvd.DefaultConfig()
	if s.spec.CacheLogMB > 0 {
		cfg.LogBytes = int64(s.spec.CacheLogMB) << 20
	}
	if s.spec.CacheReadMB > 0 {
		cfg.ReadCacheBytes = int64(s.spec.CacheReadMB) << 20
	}
	cfg.DiskBytes = s.image.Size
	cfg.Verify = s.spec.CacheVerify
	cfg.AdmitOnReuse = s.spec.CacheAdmit
	be := &cacheBackend{inner: inner, client: flush, image: s.image, pool: s.pool}
	cache, err := lsvd.New(tb.Eng, cfg, be)
	if err != nil {
		return nil, err
	}
	cache.Trace = tb.traceHost
	s.cache = cache
	return &cacheTarget{eng: tb.Eng, cache: cache, mapCost: tb.CM.DKRBDMapCost, prof: tb.Profile, trace: tb.traceHost}, nil
}

// CacheOf returns the stack's LSVD cache tier, or nil for cache-none
// stacks and host APIs that cannot carry one.
func CacheOf(st Stack) *lsvd.Cache {
	if c, ok := st.(interface{ Cache() *lsvd.Cache }); ok {
		return c.Cache()
	}
	return nil
}
