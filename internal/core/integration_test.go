package core

import (
	"testing"

	"repro/internal/fpga"
	"repro/internal/rados"
	"repro/internal/sim"
)

// TestSixStageLifecycleCounters drives one DK-HW write end to end and
// verifies every stage of the paper's Fig. 2 actually participated.
func TestSixStageLifecycleCounters(t *testing.T) {
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tb.NewStack(StackDKHW, false)
	if err != nil {
		t.Fatal(err)
	}
	dk := stack.(*pipelineStack)
	tb.Eng.Spawn("io", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := Do(p, stack, Write, Seq, int64(i)*4096, 4096, i%DKInstances); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
	})
	tb.Eng.Run()
	stack.Close()

	// Stage ①: rings submitted and completed all ops without syscalls.
	var enters, submitted, completed uint64
	for _, r := range dk.Rings() {
		e, s, c, _, _ := r.Stats()
		enters += e
		submitted += s
		completed += c
	}
	if enters != 0 {
		t.Errorf("stage 1: SQPOLL made %d enter syscalls", enters)
	}
	if submitted != 8 || completed != 8 {
		t.Errorf("stage 1: submitted=%d completed=%d", submitted, completed)
	}
	// Stage ②: the DMQ bypass issued directly.
	st := dk.MQ().Stats()
	if st.Submitted != 8 || st.Completed != 8 {
		t.Errorf("stage 2: mq %+v", st)
	}
	if st.DirectHits != 8 || st.SchedPass != 0 {
		t.Errorf("stage 2: bypass not used: %+v", st)
	}
	// Stage ③: UIFD/QDMA carried every write.
	if _, w := dk.Driver().Stats(); w != 8 {
		t.Errorf("stage 3: UIFD writes = %d", w)
	}
	qsCompletions := 0
	for _, qs := range dk.Driver().QueueSets() {
		qsCompletions += qs.Completions()
	}
	if qsCompletions != 16 { // one H2C + one C2H per op
		t.Errorf("stage 3: QDMA completions = %d, want 16", qsCompletions)
	}
	// Stage ④: the CRUSH kernel ran once per op.
	if dk.Shell().Straw2.Ops() != 8 {
		t.Errorf("stage 4: accel ops = %d", dk.Shell().Straw2.Ops())
	}
	// Stage ⑥: OSDs served 2 replicas per op over the card NIC.
	served := uint64(0)
	for _, o := range tb.Cluster.OSDs {
		served += o.Served()
	}
	if served != 16 {
		t.Errorf("stage 6: OSD services = %d, want 16", served)
	}
	card := tb.Fabric.Host("fpga-cmac")
	if card == nil || card.NIC.TxMessages() == 0 {
		t.Error("stage 6: card NIC never transmitted")
	}
}

// TestDKHWAvailabilityThroughFailure runs DK-HW load while an OSD dies; the
// monitor ejects it, placements remap, the reconfiguration policy swaps the
// RM — and not a single I/O fails.
func TestDKHWAvailabilityThroughFailure(t *testing.T) {
	cfg := DefaultTestbedConfig()
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := rados.NewMonitor(tb.Cluster)
	mon.HeartbeatEvery = 500 * sim.Microsecond
	mon.Grace = 2 * sim.Millisecond
	stack, err := tb.NewStack(StackDKHW, false)
	if err != nil {
		t.Fatal(err)
	}
	dk := stack.(*pipelineStack)
	pol := NewReconfigPolicy(tb.Eng, dk.Shell(), mon)
	mon.Start()

	const ops = 150
	failures := 0
	tb.Eng.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			if err := Do(p, stack, Write, Rand, int64(i%512)*4096, 4096, i%DKInstances); err != nil {
				failures++
			}
			if i == 30 {
				tb.Cluster.OSDs[9].SetUp(false)
			}
			p.Sleep(100 * sim.Microsecond)
		}
	})
	tb.Eng.RunUntil(sim.Time(60 * sim.Millisecond))
	mon.Stop()
	tb.Eng.Run()
	stack.Close()

	if failures != 0 {
		t.Fatalf("%d I/Os failed across the failure window", failures)
	}
	if mon.Reweights()[9] != 0 {
		t.Fatal("monitor never ejected osd.9")
	}
	// The policy re-evaluated on the map change; with 31 devices it stays
	// on tree, so just require a live RM consistent with its decision.
	rm := dk.Shell().RP.Active()
	if rm == nil {
		t.Fatal("no live RM after map change")
	}
	if rm.Kernel != pol.Current {
		t.Fatalf("live RM %v != policy decision %v", rm.Kernel, pol.Current)
	}
	// And the dead OSD no longer receives traffic once ejected: write more
	// and check its counter stays put.
	before := tb.Cluster.OSDs[9].Served()
	tb.Eng.Spawn("post", func(p *sim.Proc) {
		stack2, err := tb.NewStack(StackD2SW, false) // fresh stack on same testbed
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 40; i++ {
			Do(p, stack2, Write, Rand, int64(i)*8192, 4096, 0)
		}
		stack2.Close()
	})
	tb.Eng.Run()
	if got := tb.Cluster.OSDs[9].Served(); got != before {
		t.Fatalf("ejected OSD served %d new requests", got-before)
	}
	_ = fpga.KTree
}
