// Package core assembles the DeLiBA framework generations end to end: the
// paper's contribution (DeLiBA-K: io_uring host API + DMQ kernel block layer
// + UIFD driver + QDMA + RTL-accelerated FPGA card) and both baselines
// (DeLiBA-1 and DeLiBA-2) over the shared substrates — the simulated Ceph
// cluster, CRUSH, erasure coding, the network fabric and the FPGA device
// model.
//
// Every generation exposes the same Stack interface so the fio workload
// generator and the experiment harnesses drive them interchangeably.
package core

import (
	"fmt"

	"repro/internal/rados"
	"repro/internal/sim"
)

// OpType is a block I/O direction.
type OpType int

const (
	// Read transfers device-to-host.
	Read OpType = iota
	// Write transfers host-to-device.
	Write
)

func (o OpType) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Pattern is the access pattern hint carried to the drive model.
type Pattern int

const (
	// Seq marks sequential access.
	Seq Pattern = iota
	// Rand marks random access.
	Rand
)

func (p Pattern) String() string {
	if p == Seq {
		return "seq"
	}
	return "rand"
}

// Stack is one framework generation's full I/O path over the virtual disk:
// Submit starts a block I/O at a byte offset of the image and calls done
// exactly once on completion. Implementations are asynchronous; callers
// bound their queue depth by counting outstanding dones.
type Stack interface {
	// Name identifies the generation/variant, e.g. "deliba-k".
	Name() string
	// Submit starts one block I/O from worker CPU cpu.
	Submit(op OpType, pattern Pattern, off int64, n int, cpu int, done func(error))
	// ImageBytes returns the virtual disk size the stack exposes.
	ImageBytes() int64
	// Close releases stack resources (rings, pollers) after a run.
	Close()
}

// TenantSubmitter is implemented by stacks that can attribute an I/O to a
// tenant. SubmitTenant is Submit with the owning tenant's identity riding
// the op through every layer — host API, block layer, transport queue
// mapping, fan-out, and trace spans. Tenant 0 is the untenanted default and
// must behave exactly like Submit. Workload generators probe for this
// interface and fall back to Submit when a stack does not provide it.
type TenantSubmitter interface {
	Stack
	SubmitTenant(op OpType, pattern Pattern, off int64, n int, cpu, tenant int, done func(error))
}

// Generation labels the three framework versions.
type Generation int

const (
	// D1 is DeLiBA-1: NBD user-space path, HLS accelerators, host-side
	// networking, no erasure coding support.
	D1 Generation = iota + 1
	// D2 is DeLiBA-2: NBD user-space path, HLS accelerators and HLS
	// TCP/IP on the FPGA.
	D2
	// DK is DeLiBA-K: io_uring + DMQ + UIFD + QDMA + RTL accelerators +
	// RTL TCP/IP, with DFX partial reconfiguration.
	DK
)

func (g Generation) String() string {
	switch g {
	case D1:
		return "deliba-1"
	case D2:
		return "deliba-2"
	case DK:
		return "deliba-k"
	default:
		return fmt.Sprintf("generation(%d)", int(g))
	}
}

// blocking runs an async submit synchronously on a proc.
func blocking(p *sim.Proc, submit func(done func(error))) error {
	c := p.Engine().NewCompletion()
	submit(func(err error) { c.Complete(nil, err) })
	_, err := p.Await(c)
	return err
}

// Do runs one I/O synchronously on a proc (convenience for tests and
// latency-mode benchmarks).
func Do(p *sim.Proc, s Stack, op OpType, pattern Pattern, off int64, n int, cpu int) error {
	return blocking(p, func(done func(error)) {
		s.Submit(op, pattern, off, n, cpu, done)
	})
}

// DoDeadline is Do with a per-op deadline: it returns rados.ErrDeadline if
// the I/O has not completed after d. The abandoned I/O keeps running in the
// stack (its eventual completion is dropped), mirroring a timed-out block
// request. d <= 0 waits forever.
func DoDeadline(p *sim.Proc, s Stack, op OpType, pattern Pattern, off int64, n int, cpu int, d sim.Duration) error {
	c := p.Engine().NewCompletion()
	s.Submit(op, pattern, off, n, cpu, func(err error) { c.Complete(nil, err) })
	if d <= 0 {
		_, err := p.Await(c)
		return err
	}
	_, err, ok := p.AwaitTimeout(c, d)
	if !ok {
		return rados.ErrDeadline
	}
	return err
}
