package core

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/sim"
)

func splitConfig() TestbedConfig {
	cfg := DefaultTestbedConfig()
	cfg.Shards = 2
	cfg.SplitDomains = true
	return cfg
}

// splitRunDigest runs a mixed read/write stream on the split-domain
// testbed over deliba-k-sw+cache-lsvd and returns an FNV digest of every
// op's completion latency plus the group's cross-shard message count.
func splitRunDigest(t *testing.T, seed uint64) (uint64, uint64) {
	return splitRunDigestCfg(t, splitConfig(), seed)
}

func splitRunDigestCfg(t *testing.T, cfg TestbedConfig, seed uint64) (uint64, uint64) {
	t.Helper()
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ParseStackSpec("deliba-k-sw+cache-lsvd")
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tb.BuildStack(sp)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	tb.Eng.Spawn("split-io", func(p *sim.Proc) {
		rng := sim.NewRNG(seed)
		for i := 0; i < 200; i++ {
			op := Write
			if rng.Intn(100) < 50 {
				op = Read
			}
			off := int64(rng.Intn(256)) * 4096
			start := p.Now()
			if err := Do(p, stack, op, Rand, off, 4096, 0); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			fmt.Fprintf(h, "%d|%d\n", i, int64(p.Now().Sub(start)))
		}
	})
	tb.Eng.Run()
	if tb.Shards == nil {
		t.Fatal("split testbed built no shard group")
	}
	cache := CacheOf(stack)
	if cache == nil {
		t.Fatal("cache-lsvd stack exposes no cache")
	}
	if st := cache.Stats(); st.Appends == 0 {
		t.Error("cache log never appended: writes bypassed the cache tier")
	}
	posted := tb.Shards.Posted()
	stack.Close()
	tb.Eng.Run() // drain the cache flusher's shutdown
	return h.Sum64(), posted
}

// TestSplitDomainsSmoke drives the host-domain client + LSVD cache against
// OSDs living on a second shard and checks the run actually crossed the
// shard boundary and replays bit-identically.
func TestSplitDomainsSmoke(t *testing.T) {
	d1, posted := splitRunDigest(t, 7)
	d2, _ := splitRunDigest(t, 7)
	if d1 != d2 {
		t.Fatalf("split-domain run not deterministic: %#x vs %#x", d1, d2)
	}
	if posted == 0 {
		t.Fatal("no cross-shard messages: the OSD domain never left the host shard")
	}
	if d3, _ := splitRunDigest(t, 8); d3 == d1 {
		t.Error("digest insensitive to the workload seed")
	}
}

// TestSplitDomainsShardSpread pins the per-node domain layout: with four
// OSD nodes the split testbed builds four node domains round-robin over
// the non-host shards, and because cross-domain delivery order is fixed by
// the canonical (time, domain, sequence) merge — never by shard placement
// — the digest is bit-identical whether those domains share one shard or
// spread over three.
func TestSplitDomainsShardSpread(t *testing.T) {
	base := func(shards int) TestbedConfig {
		cfg := splitConfig()
		cfg.Nodes = 4
		cfg.OSDsPerNode = 8
		cfg.Shards = shards
		return cfg
	}
	for _, seed := range []uint64{7, 11} {
		ref, posted := splitRunDigestCfg(t, base(2), seed)
		if posted == 0 {
			t.Fatal("no cross-shard messages on the 2-shard layout")
		}
		for _, shards := range []int{3, 4} {
			got, _ := splitRunDigestCfg(t, base(shards), seed)
			if got != ref {
				t.Errorf("seed %d: digest %#x on %d shards != %#x on 2 shards — shard placement leaked into event order",
					seed, got, shards, ref)
			}
		}
	}
}

// TestSplitDomainsRejects pins the unsupported combinations: split mode
// needs >= 2 shards, and the card models, erasure coding and the
// resilience layer all drive cluster state from the host domain.
func TestSplitDomainsRejects(t *testing.T) {
	cfg := DefaultTestbedConfig()
	cfg.SplitDomains = true
	if _, err := NewTestbed(cfg); err == nil || !strings.Contains(err.Error(), "Shards >= 2") {
		t.Errorf("SplitDomains without shards: %v", err)
	}
	cfg.Shards = 2
	cfg.Resilience.Enabled = true
	if _, err := NewTestbed(cfg); err == nil || !strings.Contains(err.Error(), "resilience") {
		t.Errorf("SplitDomains with resilience: %v", err)
	}

	tb, err := NewTestbed(splitConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"deliba-k-hw", "deliba-2-hw", "deliba-1-hw"} {
		sp, err := ParseStackSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.BuildStack(sp); err == nil || !strings.Contains(err.Error(), "split-domain") {
			t.Errorf("card stack %s on split testbed: %v", spec, err)
		}
	}
	sp, err := ParseStackSpec("deliba-k-sw")
	if err != nil {
		t.Fatal(err)
	}
	sp.EC = true
	if _, err := tb.BuildStack(sp); err == nil || !strings.Contains(err.Error(), "erasure") {
		t.Errorf("EC stack on split testbed: %v", err)
	}
}
