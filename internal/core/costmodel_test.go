package core

import (
	"testing"

	"repro/internal/sim"
)

// The cost model's internal orderings are what every experiment's shape
// rests on; pin them so a miscalibration fails loudly rather than silently
// flattening a figure.

func TestCostModelStackOrdering(t *testing.T) {
	cm := DefaultCostModel()
	for _, n := range []int{64, 4096, 131072} {
		rtl := cm.RTLStack.Cost(n)
		hls := cm.HLSStack.Cost(n)
		host := cm.HostStack.Cost(n)
		d1 := cm.D1NetStack.Cost(n)
		if !(rtl < host) {
			t.Errorf("n=%d: RTL (%v) not below host (%v)", n, rtl, host)
		}
		if !(rtl < hls) {
			t.Errorf("n=%d: RTL (%v) not below HLS (%v)", n, rtl, hls)
		}
		if !(host < d1) {
			t.Errorf("n=%d: host (%v) not below D1 daemon path (%v)", n, host, d1)
		}
	}
	// The HLS pipeline's weakness is per-byte: at large payloads it must
	// exceed even D1's host path per message.
	if cm.HLSStack.Cost(131072) < cm.HostStack.Cost(131072) {
		t.Error("HLS not slower than kernel stack at 128kB")
	}
}

func TestCostModelHostPathOrdering(t *testing.T) {
	cm := DefaultCostModel()
	for _, n := range []int{4096, 131072} {
		d1 := cm.D1Host.PathCost(n)
		d2 := cm.D2Host.PathCost(n)
		if d1 <= d2 {
			t.Errorf("n=%d: D1 host path (%v) not above D2 (%v)", n, d1, d2)
		}
	}
	if cm.D1Host.ContextSwitches != 6 || cm.D2Host.ContextSwitches != 5 {
		t.Errorf("context switch counts %d/%d, paper says 6/5",
			cm.D1Host.ContextSwitches, cm.D2Host.ContextSwitches)
	}
}

func TestCostModelAcceleratorVsSoftware(t *testing.T) {
	cm := DefaultCostModel()
	// The inline software placement cost must dwarf the card pipeline cost
	// — that gap is the hardware win.
	if cm.SWPlacement <= cm.CardProcessing {
		t.Error("software placement not above card processing")
	}
	if cm.HLSLatencyScale <= 1.0 {
		t.Error("HLS scale must exceed 1 (the 45.71% RTL improvement)")
	}
	// EC software costs grow with size.
	if cm.SWECEncode(131072) <= cm.SWECEncode(4096) {
		t.Error("EC encode cost does not scale")
	}
	if cm.SWECDecode(4096) <= 0 {
		t.Error("EC decode cost missing")
	}
}

func TestScaleByKiB(t *testing.T) {
	ref := 10 * sim.Microsecond
	if got := scaleByKiB(ref, 4096, 4096); got != ref {
		t.Fatalf("at reference size: %v", got)
	}
	// Half fixed + half variable: doubling size gives 1.5x.
	if got := scaleByKiB(ref, 8192, 4096); got != ref*3/2 {
		t.Fatalf("double size: %v, want %v", got, ref*3/2)
	}
	if got := scaleByKiB(ref, 0, 4096); got != ref/2 {
		t.Fatalf("zero size: %v, want fixed half %v", got, ref/2)
	}
}

func TestDefaultTestbedShapeMatchesPaper(t *testing.T) {
	cfg := DefaultTestbedConfig()
	if cfg.Nodes != 2 || cfg.OSDsPerNode != 16 {
		t.Errorf("testbed %dx%d, paper has 2x16", cfg.Nodes, cfg.OSDsPerNode)
	}
	if cfg.ECK != 4 || cfg.ECM != 2 {
		t.Errorf("EC geometry %d+%d", cfg.ECK, cfg.ECM)
	}
	if cfg.CM.NICBitsPerSec != 10e9 {
		t.Errorf("NIC rate %v, paper uses 10 GbE", cfg.CM.NICBitsPerSec)
	}
	if DKInstances != 3 {
		t.Errorf("io_uring instances = %d, paper uses 3", DKInstances)
	}
}
