package core

import (
	"repro/internal/fpga"
	"repro/internal/rados"
	"repro/internal/sim"
)

// ReconfigPolicy implements the paper's motivation for DFX (§IV-C): "the
// size of the Ceph storage cluster may fluctuate due to the failure of
// underlying disks... or the addition of new disks... This variation
// necessitates time-division multiplexing of the underlying FPGA
// resources." The policy subscribes to monitor map changes and swaps the
// reconfigurable partition to the replication accelerator best suited to
// the current cluster composition:
//
//   - Uniform bucket: all in-devices share one weight (homogeneous
//     hardware),
//   - List bucket: the cluster is growing (devices recently added),
//   - Tree bucket: large or weight-heterogeneous clusters.
type ReconfigPolicy struct {
	eng   *sim.Engine
	shell *fpga.Shell
	mon   *rados.Monitor

	// TreeThreshold is the in-device count above which the tree kernel is
	// preferred for heterogeneous clusters.
	TreeThreshold int

	lastIn int
	// Swaps counts completed reconfigurations; SkippedBusy counts map
	// changes that arrived while a swap was already streaming.
	Swaps       uint64
	SkippedBusy uint64
	// Current is the policy's last decision.
	Current fpga.KernelID
}

// NewReconfigPolicy wires the policy to a monitor and a DFX shell and
// applies an initial decision.
func NewReconfigPolicy(eng *sim.Engine, shell *fpga.Shell, mon *rados.Monitor) *ReconfigPolicy {
	p := &ReconfigPolicy{
		eng:           eng,
		shell:         shell,
		mon:           mon,
		TreeThreshold: 24,
	}
	p.lastIn = p.inCount()
	mon.Subscribe(func(uint64) { p.react() })
	p.react()
	return p
}

// inCount counts fully or partially in devices.
func (p *ReconfigPolicy) inCount() int {
	n := 0
	for _, w := range p.mon.Reweights() {
		if w > 0 {
			n++
		}
	}
	return n
}

// Decide returns the kernel the current map calls for.
func (p *ReconfigPolicy) Decide() fpga.KernelID {
	rw := p.mon.Reweights()
	in := 0
	uniform := true
	var first uint32
	for _, w := range rw {
		if w == 0 {
			continue
		}
		if in == 0 {
			first = w
		} else if w != first {
			uniform = false
		}
		in++
	}
	growing := in > p.lastIn
	switch {
	case uniform && in <= p.TreeThreshold && !growing:
		return fpga.KUniform
	case growing:
		return fpga.KList
	default:
		return fpga.KTree
	}
}

// react evaluates the map and, if the decision changed, streams the new RM.
func (p *ReconfigPolicy) react() {
	want := p.Decide()
	p.lastIn = p.inCount()
	if p.Current == want && p.shell.RP != nil && p.shell.RP.Active() != nil {
		return
	}
	p.Current = want
	if p.shell.RP == nil {
		return // static build: every kernel is resident
	}
	if p.shell.RP.Reconfiguring() {
		// A swap is in flight; the next map change will re-evaluate.
		p.SkippedBusy++
		return
	}
	p.shell.RP.Reconfigure(want.String(), func(err error) {
		if err == nil {
			p.Swaps++
		}
	})
}
