package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func newSpecTestbed(t *testing.T) *Testbed {
	t.Helper()
	cfg := DefaultTestbedConfig()
	cfg.Jitter = false
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestNamedSpecsBuild asserts the whole spec table is buildable: every one
// of the paper's five stacks assembles through BuildStack and answers a
// small I/O burst.
func TestNamedSpecsBuild(t *testing.T) {
	specs := NamedSpecs()
	if len(specs) != 5 {
		t.Fatalf("spec table has %d rows, want 5", len(specs))
	}
	wantNames := []string{"deliba-1-hw", "deliba-2-sw", "deliba-2-hw", "deliba-k-sw", "deliba-k-hw"}
	for i, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if spec.Name != wantNames[i] {
				t.Errorf("row %d named %q, want %q", i, spec.Name, wantNames[i])
			}
			if err := spec.Validate(); err != nil {
				t.Fatalf("table row invalid: %v", err)
			}
			tb := newSpecTestbed(t)
			stack, err := tb.BuildStack(spec)
			if err != nil {
				t.Fatal(err)
			}
			if stack.Name() != spec.Name {
				t.Errorf("stack name %q, want %q", stack.Name(), spec.Name)
			}
			var ioErr error
			tb.Eng.Spawn("io", func(p *sim.Proc) {
				for i := 0; i < 4 && ioErr == nil; i++ {
					ioErr = Do(p, stack, Write, Seq, int64(i)*4096, 4096, i)
				}
			})
			tb.Eng.Run()
			stack.Close()
			if ioErr != nil {
				t.Fatalf("I/O through %s: %v", spec.Name, ioErr)
			}
		})
	}
}

// TestBuildStackRejectsInvalidCombos exercises every validation rule and
// checks the error names the conflicting layers.
func TestBuildStackRejectsInvalidCombos(t *testing.T) {
	dk := func() StackSpec { s, _ := Spec(StackDKHW); return s }
	cases := []struct {
		name string
		spec StackSpec
		want string // substring the error must contain
	}{
		{"iouring-needs-block-layer", func() StackSpec {
			s := dk()
			s.Block = BlockNone
			return s
		}(), "requires a kernel block layer"},
		{"nbd-cannot-drive-dmq", func() StackSpec {
			s, _ := Spec(StackD2HW)
			s.Block = BlockDMQBypass
			return s
		}(), "cannot drive block layer"},
		{"qdma-needs-iouring", func() StackSpec {
			s, _ := Spec(StackD2HW)
			s.Transport = TransportQDMA
			s.Block = BlockNone
			return s
		}(), "requires host API iouring"},
		{"legacy-dma-needs-nbd", func() StackSpec {
			s := dk()
			s.Transport = TransportLegacyDMA
			return s
		}(), "requires host API nbd"},
		{"mq-deadline-needs-qdma", func() StackSpec {
			s, _ := Spec(StackDKSW)
			s.Block = BlockMQDeadline
			return s
		}(), "only exists on the qdma path"},
		{"card-placement-needs-card", func() StackSpec {
			s, _ := Spec(StackDKSW)
			s.Placement = PlacementRTL
			return s
		}(), "runs on the card and requires transport"},
		{"sw-placement-forbids-card", func() StackSpec {
			s := dk()
			s.Placement = PlacementSoftware
			return s
		}(), "needs no card"},
		{"card-fanout-needs-card-placement", func() StackSpec {
			s, _ := Spec(StackDKSW)
			s.Fanout = FanoutCardRTL
			return s
		}(), "the card never learns the placement"},
		{"host-fanout-with-rtl-needs-legacy", func() StackSpec {
			s := dk()
			s.Fanout = FanoutHostTCP
			return s
		}(), "needs the legacy-dma offload round trip"},
		{"ring-options-need-iouring", func() StackSpec {
			s, _ := Spec(StackD2HW)
			s.RingInterrupt = true
			return s
		}(), "ring options"},
		{"instances-out-of-range", func() StackSpec {
			s := dk()
			s.Instances = 65
			return s
		}(), "out of range"},
		{"negative-entries", func() StackSpec {
			s := dk()
			s.RingEntries = -1
			return s
		}(), "negative ring entries"},
	}
	tb := newSpecTestbed(t)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tb.BuildStack(tc.spec); err == nil {
				t.Fatalf("BuildStack accepted invalid spec %+v", tc.spec)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// EC on the D1 shape lacks an RS path on either side of the DMA link.
	d1, _ := Spec(StackD1HW)
	d1.EC = true
	if _, err := tb.BuildStack(d1); !errors.Is(err, errNoECInD1) {
		t.Errorf("EC on D1 shape: err = %v, want errNoECInD1", err)
	}
}

// TestBuildStackHybrid builds a composition that is none of the five named
// generations — DeLiBA-K's datapath with the HLS placement kernel — to
// prove layers actually compose beyond the table.
func TestBuildStackHybrid(t *testing.T) {
	spec, err := ParseStackSpec("iouring,dmq-bypass,qdma,hls-crush,card-rtl")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "iouring+dmq-bypass+qdma+hls-crush+card-rtl" {
		t.Errorf("canonical name = %q", spec.Name)
	}
	tb := newSpecTestbed(t)
	stack, err := tb.BuildStack(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ioErr error
	tb.Eng.Spawn("io", func(p *sim.Proc) {
		ioErr = Do(p, stack, Write, Seq, 0, 65536, 0)
	})
	tb.Eng.Run()
	stack.Close()
	if ioErr != nil {
		t.Fatal(ioErr)
	}
	if ops := stack.(*pipelineStack).Shell().Straw2.Ops(); ops == 0 {
		t.Error("hybrid stack never ran the placement kernel")
	}
}

// TestParseStackSpec covers the named shortcuts, token lists, option
// parsing, and rejection of junk.
func TestParseStackSpec(t *testing.T) {
	for _, kind := range []StackKind{StackDKHW, StackDKSW, StackD2HW, StackD2SW, StackD1HW} {
		spec, err := ParseStackSpec(kind.String())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		want, _ := Spec(kind)
		if spec != want {
			t.Errorf("ParseStackSpec(%q) = %+v, want %+v", kind.String(), spec, want)
		}
	}

	spec, err := ParseStackSpec("iouring,dmq-bypass,qdma,rtl-crush,card-rtl,ec,interrupt,instances=1,entries=64")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.EC || !spec.RingInterrupt || spec.Instances != 1 || spec.RingEntries != 64 {
		t.Errorf("options not applied: %+v", spec)
	}
	if spec.ringInstances() != 1 || spec.ringDepth() != 64 {
		t.Errorf("resolved instances=%d depth=%d", spec.ringInstances(), spec.ringDepth())
	}

	for _, bad := range []string{
		"warpspeed",            // unknown token
		"instances=lots",       // unparsable option
		"nbd,dmq-bypass",       // fails validation
		"iouring,noblock,qdma", // fails validation
		"sw-crush",             // sw placement on default qdma transport
	} {
		if _, err := ParseStackSpec(bad); err == nil {
			t.Errorf("ParseStackSpec(%q) accepted", bad)
		}
	}
}

// TestSQFullBackoffDeterministic drives a ring set sized far below the
// offered load so the SQ-full retry path fires, and checks the seeded
// jitter stream makes the replay identical run to run.
func TestSQFullBackoffDeterministic(t *testing.T) {
	run := func() sim.Time {
		cfg := DefaultTestbedConfig()
		cfg.Jitter = false
		tb, err := NewTestbed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := Spec(StackDKHW)
		spec.Instances = 1
		spec.RingEntries = 2
		stack, err := tb.BuildStack(spec)
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		for i := 0; i < 32; i++ {
			off := int64(i) * 4096
			tb.Eng.Spawn("io", func(p *sim.Proc) {
				if err := Do(p, stack, Write, Seq, off, 4096, 0); err != nil {
					t.Errorf("write at %d: %v", off, err)
				}
				done++
			})
		}
		tb.Eng.Run()
		stack.Close()
		if done != 32 {
			t.Fatalf("completed %d/32 writes", done)
		}
		return tb.Eng.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("run %d finished at %v, first at %v — backoff jitter not deterministic", i+2, again, first)
		}
	}
}
