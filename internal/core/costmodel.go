package core

import (
	"repro/internal/fpga"
	"repro/internal/legacyapi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// CostModel collects every calibrated host/path cost. A single instance
// (DefaultCostModel) is shared by all experiments so the tables and figures
// come from one consistent parameterisation; EXPERIMENTS.md records how the
// values were fitted against the paper's software baseline and Table II.
type CostModel struct {
	// --- host APIs -----------------------------------------------------

	// DKIOUring parameterises the DeLiBA-K io_uring rings.
	DKIOUringSyscall sim.Duration
	DKPerSQE         sim.Duration
	DKSQPollLatency  sim.Duration
	// DKRBDMapCost is the kernel RBD offset→object mapping cost per I/O in
	// the UIFD driver.
	DKRBDMapCost sim.Duration

	// D1Host and D2Host are the legacy NBD/user-space path profiles:
	// 6 context switches per I/O for DeLiBA-1, 5 for DeLiBA-2 (paper §III).
	D1Host legacyapi.CostProfile
	D2Host legacyapi.CostProfile
	// NBDSocketRTT is the kernel<->daemon unix socket round trip.
	NBDSocketRTT sim.Duration
	// D1NetWakeup is DeLiBA-1's per-network-message daemon wakeup cost
	// (epoll + interrupt-driven sockets in the user-space loop).
	D1NetWakeup sim.Duration
	// D2SWLibraryRead/Write are the user-space Ceph library costs per op
	// in the DeLiBA-2 software baseline (striping, CRC, throttles); reads
	// pay an extra verify+copy pass.
	D2SWLibraryRead  sim.Duration
	D2SWLibraryWrite sim.Duration

	// --- client-side software processing -------------------------------

	// SWPlacement is the inline per-op software CRUSH cost on the client's
	// hot path. It is smaller than Table I's full-kernel profile (48-55 µs)
	// because the client caches PG mappings and only re-walks buckets on
	// map changes; the full profile is reproduced separately by the tab1
	// experiment.
	SWPlacement sim.Duration
	// SWECEncode returns the software Reed-Solomon encode cost (Table I RS
	// row at 4 kB, scaled per KiB).
	SWECEncode func(n int) sim.Duration
	// SWECDecode is charged for degraded reads in software.
	SWECDecode func(n int) sim.Duration

	// --- FPGA path ------------------------------------------------------

	// HLSLatencyScale multiplies RTL accelerator latency for the HLS
	// kernels of D1/D2 (the paper reports the RTL redesign cut latency by
	// 45.71%, i.e. HLS ≈ 1.84x RTL).
	HLSLatencyScale float64
	// LegacyDMACost is D1/D2's per-crossing host<->card DMA overhead
	// (driver + descriptor handling; DK pays qdma costs instead).
	LegacyDMACost sim.Duration
	// CardProcessing is the card-side fixed pipeline cost per I/O
	// (packetisation, session lookup) for the DK RTL datapath.
	CardProcessing sim.Duration
	// HLSCardProcessing is the same for D1/D2's HLS datapath.
	HLSCardProcessing sim.Duration
	// CardWriteOverhead is the extra write-path cost on the card
	// (payload descriptor handling, doorbells, durability handshake
	// aggregation over the replica acks).
	CardWriteOverhead sim.Duration

	// --- network ----------------------------------------------------

	// HostStack is the kernel TCP/IP profile (client and OSD nodes).
	HostStack netsim.StackCost
	// D1NetStack is DeLiBA-1's host networking profile: kernel TCP plus
	// the daemon's extra per-byte copies (socket buffer → daemon → NBD →
	// page cache) on a single thread, which is why D1's large-block
	// throughput trails even DeLiBA-2's HLS path.
	D1NetStack netsim.StackCost
	// RTLStack is the DK FPGA TCP/IP profile.
	RTLStack netsim.StackCost
	// HLSStack is the D2 FPGA TCP/IP profile (between the two).
	HLSStack netsim.StackCost
	// Propagation is the one-way switch+cable delay.
	Propagation sim.Duration
	// NICBitsPerSec is the 10 GbE line rate.
	NICBitsPerSec float64
}

// DefaultCostModel returns the calibrated model. Fitting anchors:
//   - Fig 3/4 software baseline: DK-SW 4 kB rand read ≈ 85 µs vs D2-SW
//     ≈ 130 µs; rand write 80 µs vs 98 µs.
//   - Table II hardware latency: DK 40/52/64/68 µs (seq-r/seq-w/rand-r/
//     rand-w, 4 kB replication), D2 55/75/85/82, D1 65/95/130/98.
//   - Table I: SW kernel profiles (straw2 48 µs, RS 65 µs) and RTL cycle
//     counts at 235 MHz.
func DefaultCostModel() CostModel {
	d1 := legacyapi.CostProfile{
		SyscallCost:       1200 * sim.Nanosecond,
		ContextSwitches:   6,
		ContextSwitchCost: 1700 * sim.Nanosecond,
		Copies:            3,
		CopyPerKiB:        70 * sim.Nanosecond,
	}
	d2 := d1
	d2.ContextSwitches = 5
	d2.Copies = 2
	_ = fpga.KernelTable // Table I values feed the tab1 experiment directly
	return CostModel{
		DKIOUringSyscall: 1200 * sim.Nanosecond,
		DKPerSQE:         250 * sim.Nanosecond,
		DKSQPollLatency:  400 * sim.Nanosecond,
		DKRBDMapCost:     900 * sim.Nanosecond,

		D1Host:           d1,
		D2Host:           d2,
		NBDSocketRTT:     4 * sim.Microsecond,
		D1NetWakeup:      9 * sim.Microsecond,
		D2SWLibraryRead:  28 * sim.Microsecond,
		D2SWLibraryWrite: 18 * sim.Microsecond,

		SWPlacement: 18 * sim.Microsecond,
		SWECEncode: func(n int) sim.Duration {
			return scaleByKiB(12*sim.Microsecond, n, 4096)
		},
		SWECDecode: func(n int) sim.Duration {
			return scaleByKiB(15*sim.Microsecond, n, 4096)
		},

		HLSLatencyScale:   1.84,
		LegacyDMACost:     2500 * sim.Nanosecond,
		CardProcessing:    1500 * sim.Nanosecond,
		HLSCardProcessing: 3500 * sim.Nanosecond,
		CardWriteOverhead: 16 * sim.Microsecond,

		HostStack:  netsim.StackCost{PerMessage: 2000 * sim.Nanosecond, PerKiB: 100 * sim.Nanosecond},
		D1NetStack: netsim.StackCost{PerMessage: 5000 * sim.Nanosecond, PerKiB: 2200 * sim.Nanosecond},
		RTLStack:   netsim.RTLStack,
		// The HLS TCP pipeline sustains well under line rate on large
		// payloads (the limitation §IV-D's RTL redesign removes).
		HLSStack:      netsim.StackCost{PerMessage: 4000 * sim.Nanosecond, PerKiB: 1600 * sim.Nanosecond},
		Propagation:   2 * sim.Microsecond,
		NICBitsPerSec: 10e9,
	}
}

// scaleByKiB scales a reference cost measured at refBytes linearly in the
// payload size, with half the cost treated as fixed.
func scaleByKiB(ref sim.Duration, n, refBytes int) sim.Duration {
	fixed := ref / 2
	variable := ref - fixed
	return fixed + sim.Duration(int64(variable)*int64(n)/int64(refBytes))
}
