package core

import (
	"testing"

	"repro/internal/crush"
	"repro/internal/fpga"
	"repro/internal/rados"
	"repro/internal/sim"
)

func newReconfigRig(t *testing.T) (*Testbed, *fpga.Shell, *rados.Monitor, *ReconfigPolicy) {
	t.Helper()
	tb, err := NewTestbed(DefaultTestbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	shell, err := buildShell(tb, tb.ReplPool, false)
	if err != nil {
		t.Fatal(err)
	}
	mon := rados.NewMonitor(tb.Cluster)
	pol := NewReconfigPolicy(tb.Eng, shell, mon)
	return tb, shell, mon, pol
}

func TestReconfigInitialDecisionTree(t *testing.T) {
	// 32 equal-weight devices exceed the uniform threshold → tree.
	tb, shell, _, pol := newReconfigRig(t)
	tb.Eng.Run()
	if pol.Current != fpga.KTree {
		t.Fatalf("initial decision = %v, want tree (32 devices)", pol.Current)
	}
	rm := shell.RP.Active()
	if rm == nil || rm.Kernel != fpga.KTree {
		t.Fatalf("live RM = %+v", rm)
	}
	if pol.Swaps != 1 {
		t.Fatalf("swaps = %d", pol.Swaps)
	}
}

func TestReconfigShrinkToUniform(t *testing.T) {
	tb, shell, mon, pol := newReconfigRig(t)
	tb.Eng.Run() // settle on tree
	// Shrink to 16 homogeneous devices: uniform becomes appropriate.
	for osd := 16; osd < 32; osd++ {
		mon.MarkOut(osd)
	}
	tb.Eng.Run()
	if pol.Current != fpga.KUniform {
		t.Fatalf("after shrink: %v, want uniform", pol.Current)
	}
	if rm := shell.RP.Active(); rm == nil || rm.Kernel != fpga.KUniform {
		t.Fatalf("live RM after shrink = %+v", rm)
	}
}

func TestReconfigGrowthSelectsList(t *testing.T) {
	tb, _, mon, pol := newReconfigRig(t)
	tb.Eng.Run()
	// Shrink then grow: the growth step must select the list kernel.
	for osd := 16; osd < 32; osd++ {
		mon.MarkOut(osd)
	}
	tb.Eng.Run()
	mon.MarkIn(20)
	tb.Eng.Run()
	if pol.Current != fpga.KList {
		t.Fatalf("after growth: %v, want list", pol.Current)
	}
}

func TestReconfigHeterogeneousWeightsSelectTree(t *testing.T) {
	tb, _, mon, pol := newReconfigRig(t)
	tb.Eng.Run()
	for osd := 16; osd < 32; osd++ {
		mon.MarkOut(osd)
	}
	tb.Eng.Run() // uniform now
	if pol.Current != fpga.KUniform {
		t.Skipf("precondition: %v", pol.Current)
	}
	// Make one remaining device half-weight: no longer homogeneous.
	mon.Reweight(3, crush.WeightOne/2)
	tb.Eng.Run()
	if pol.Current != fpga.KTree {
		t.Fatalf("heterogeneous weights: %v, want tree", pol.Current)
	}
}

func TestReconfigBusySkipCounted(t *testing.T) {
	tb, shell, mon, pol := newReconfigRig(t)
	// Fire two map changes back to back while the initial swap streams.
	mon.MarkOut(31)
	mon.MarkOut(30)
	tb.Eng.Run()
	if pol.SkippedBusy == 0 {
		t.Log("no busy skips observed (timing-dependent); acceptable")
	}
	// Whatever happened, the shell ends with a live RM matching Current.
	rm := shell.RP.Active()
	if rm == nil {
		t.Fatal("no live RM after map churn")
	}
	_ = rm
}

func TestReconfigStaticBuildNoSwaps(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	shell, err := buildShell(tb, tb.ReplPool, true) // static
	if err != nil {
		t.Fatal(err)
	}
	mon := rados.NewMonitor(tb.Cluster)
	pol := NewReconfigPolicy(tb.Eng, shell, mon)
	mon.MarkOut(5)
	tb.Eng.Run()
	if pol.Swaps != 0 {
		t.Fatalf("static build performed %d swaps", pol.Swaps)
	}
	// The decision is still tracked even without DFX.
	if pol.Current == 0 && pol.Decide() == 0 {
		t.Fatal("no decision recorded")
	}
	_ = sim.Microsecond
}
