package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the declarative half of the stack pipeline: the five layer
// kinds a DeLiBA generation is composed from, the StackSpec that names one
// composition, the spec table for the paper's five stacks, and the
// validation rules that reject combinations the modelled hardware cannot
// form. The imperative half — turning a valid spec into a wired Stack — is
// BuildStack in layers.go.

// HostAPIKind selects how block I/O enters the host side of the stack.
type HostAPIKind int

const (
	// HostIOUring is DeLiBA-K's per-core io_uring ring set (SQPOLL).
	HostIOUring HostAPIKind = iota
	// HostNBD is the DeLiBA-1/2 user-space NBD daemon loop.
	HostNBD
)

// BlockKind selects the kernel block layer between the host API and the
// transport.
type BlockKind int

const (
	// BlockDMQBypass is DeLiBA-K's DMQ: blk-mq with the scheduler bypassed
	// and direct per-core issue.
	BlockDMQBypass BlockKind = iota
	// BlockMQDeadline routes requests through an mq-deadline elevator
	// (ablation ②).
	BlockMQDeadline
	// BlockNone skips the kernel block layer entirely (the NBD daemons
	// talk to their device from user space).
	BlockNone
)

// TransportKind selects the host↔card data path.
type TransportKind int

const (
	// TransportQDMA is DeLiBA-K's UIFD + QDMA queue sets.
	TransportQDMA TransportKind = iota
	// TransportLegacyDMA is the DeLiBA-1/2 pre-QDMA DMA engine.
	TransportLegacyDMA
	// TransportHostOnly means no card at all: requests stay on the host
	// and reach the cluster through the software Ceph client.
	TransportHostOnly
)

// PlacementKind selects where CRUSH placement is computed.
type PlacementKind int

const (
	// PlacementRTL is DeLiBA-K's RTL straw2 kernel (DFX-swappable).
	PlacementRTL PlacementKind = iota
	// PlacementHLS is the DeLiBA-1/2 HLS kernel (static shell, scaled
	// latency).
	PlacementHLS
	// PlacementSoftware computes placement in the host Ceph client.
	PlacementSoftware
)

// FanoutKind selects which network path carries replica/shard fan-out.
type FanoutKind int

const (
	// FanoutCardRTL is DeLiBA-K's RTL TCP/IP stack on the card NIC.
	FanoutCardRTL FanoutKind = iota
	// FanoutCardHLS is DeLiBA-2's HLS TCP/IP stack on the card NIC.
	FanoutCardHLS
	// FanoutHostTCP fans out over the host kernel TCP/IP stack (DeLiBA-1
	// and both software baselines).
	FanoutHostTCP
)

// CacheKind selects the optional client-side write-back cache tier
// between the kernel block layer and the transport.
type CacheKind int

const (
	// CacheNone is the direct path of all five paper generations.
	CacheNone CacheKind = iota
	// CacheLSVD inserts the log-structured write-back cache
	// (internal/lsvd) on a simulated NVMe-class log device.
	CacheLSVD
)

// QoSKind selects the multi-tenant QoS scheduler installed in the kernel
// block layer. Anything but QoSNone replaces DMQ's direct bypass with a
// per-tenant elevator: requests queue in blk-mq and a rate-control policy
// decides dispatch order, trading the bypass's per-op latency for isolation
// under noisy neighbors.
type QoSKind int

const (
	// QoSNone keeps the spec's block layer untouched (bypass or deadline).
	QoSNone QoSKind = iota
	// QoSTokenBucket caps every tenant at an equal byte rate
	// (blockmq.TokenBucketScheduler).
	QoSTokenBucket
	// QoSDMClock runs the mClock-style reservation/limit/weight scheduler
	// (blockmq.DMClockScheduler).
	QoSDMClock
)

// ReplKind selects the replication protocol for the replicated pool.
type ReplKind int

const (
	// ReplPrimary is Ceph's primary-copy strong-sync protocol: the writer
	// waits for every up replica to ack (the paper's baseline and the
	// default for every existing stack).
	ReplPrimary ReplKind = iota
	// ReplRaft runs one Raft group per PG (internal/raft): writes commit
	// on a majority, reads are served locally under the leader's lease,
	// and crashed or partitioned leaders are re-elected within the
	// election timeout instead of stalling I/O until failure detection.
	ReplRaft
)

func (k HostAPIKind) String() string {
	return [...]string{"iouring", "nbd"}[k]
}

func (k BlockKind) String() string {
	return [...]string{"dmq-bypass", "mq-deadline", "noblock"}[k]
}

func (k TransportKind) String() string {
	return [...]string{"qdma", "legacy-dma", "hostonly"}[k]
}

func (k PlacementKind) String() string {
	return [...]string{"rtl-crush", "hls-crush", "sw-crush"}[k]
}

func (k FanoutKind) String() string {
	return [...]string{"card-rtl", "card-hls", "host-tcp"}[k]
}

func (k CacheKind) String() string {
	return [...]string{"cache-none", "cache-lsvd"}[k]
}

func (k ReplKind) String() string {
	return [...]string{"repl-primary", "repl-raft"}[k]
}

func (k QoSKind) String() string {
	return [...]string{"qos-none", "qos-tbucket", "qos-dmclock"}[k]
}

// StackSpec declares one stack composition. The zero value is the full
// DeLiBA-K hardware pipeline over the replicated pool.
type StackSpec struct {
	// Name labels the stack (Stack.Name). Empty derives a canonical
	// "layer+layer+..." name in BuildStack.
	Name string

	HostAPI   HostAPIKind
	Block     BlockKind
	Transport TransportKind
	Placement PlacementKind
	Fanout    FanoutKind

	// EC selects the erasure-coded pool and image instead of replicated.
	EC bool

	// Cache optionally inserts the log-structured client-side write-back
	// cache tier (internal/lsvd) under the kernel block layer, in front
	// of the transport. CacheNone is the direct path.
	Cache CacheKind
	// CacheLogMB / CacheReadMB override the cache's write-log and
	// read-cache partition sizes in MiB (0 = lsvd.DefaultConfig).
	CacheLogMB  int
	CacheReadMB int
	// CacheVerify enables the cache's acked-write shadow audit
	// (crash-recovery scenarios; costs memory per distinct range).
	CacheVerify bool
	// CacheAdmit enables the cache's reuse-gated read admission: a window
	// must miss twice before read-around fills the read cache, so
	// Zipf-tail one-touch reads fetch exact bytes and never pollute it.
	CacheAdmit bool

	// QoS selects the multi-tenant block-layer scheduler. QoSNone is every
	// paper stack's behaviour; the other kinds queue requests through a
	// per-tenant rate-control elevator on the QDMA path.
	QoS QoSKind

	// Replication selects the replication protocol for the replicated
	// pool: primary-copy (the default, all paper stacks) or per-PG
	// multi-Raft (internal/raft).
	Replication ReplKind

	// --- io_uring host-API tuning (ablation knobs) ---------------------

	// RingInterrupt switches the rings from SQPOLL to interrupt mode with
	// per-batch enter syscalls (ablation ①).
	RingInterrupt bool
	// Instances overrides the ring/queue count (0 = the paper's 3).
	Instances int
	// RingEntries overrides the per-ring SQ depth (0 = 256).
	RingEntries int
}

// Spec returns the declarative composition of one of the paper's five
// stacks (Fig. 3): each generation is just a different row of this table.
func Spec(kind StackKind) (StackSpec, error) {
	switch kind {
	case StackDKHW:
		return StackSpec{Name: "deliba-k-hw", HostAPI: HostIOUring, Block: BlockDMQBypass,
			Transport: TransportQDMA, Placement: PlacementRTL, Fanout: FanoutCardRTL}, nil
	case StackDKSW:
		return StackSpec{Name: "deliba-k-sw", HostAPI: HostIOUring, Block: BlockDMQBypass,
			Transport: TransportHostOnly, Placement: PlacementSoftware, Fanout: FanoutHostTCP}, nil
	case StackD2HW:
		return StackSpec{Name: "deliba-2-hw", HostAPI: HostNBD, Block: BlockNone,
			Transport: TransportLegacyDMA, Placement: PlacementHLS, Fanout: FanoutCardHLS}, nil
	case StackD2SW:
		return StackSpec{Name: "deliba-2-sw", HostAPI: HostNBD, Block: BlockNone,
			Transport: TransportHostOnly, Placement: PlacementSoftware, Fanout: FanoutHostTCP}, nil
	case StackD1HW:
		return StackSpec{Name: "deliba-1-hw", HostAPI: HostNBD, Block: BlockNone,
			Transport: TransportLegacyDMA, Placement: PlacementHLS, Fanout: FanoutHostTCP}, nil
	default:
		return StackSpec{}, fmt.Errorf("core: unknown stack kind %v", kind)
	}
}

// NamedSpecs returns the spec table for all five paper stacks, in the
// paper's generation order.
func NamedSpecs() []StackSpec {
	kinds := []StackKind{StackD1HW, StackD2SW, StackD2HW, StackDKSW, StackDKHW}
	out := make([]StackSpec, 0, len(kinds))
	for _, k := range kinds {
		s, _ := Spec(k)
		out = append(out, s)
	}
	return out
}

// canonicalName derives a stable layer-by-layer name for unnamed hybrids.
func (s StackSpec) canonicalName() string {
	name := fmt.Sprintf("%v+%v+%v+%v+%v", s.HostAPI, s.Block, s.Transport, s.Placement, s.Fanout)
	if s.EC {
		name += "+ec"
	}
	if s.Cache == CacheLSVD {
		name += "+" + s.Cache.String()
		if s.CacheAdmit {
			name += "+cacheadmit"
		}
	}
	if s.Replication == ReplRaft {
		name += "+" + s.Replication.String()
	}
	if s.QoS != QoSNone {
		name += "+" + s.QoS.String()
	}
	return name
}

// Validate rejects layer combinations the modelled hardware cannot form,
// with errors that say which pair of layers conflicts and why.
func (s StackSpec) Validate() error {
	if s.HostAPI < HostIOUring || s.HostAPI > HostNBD {
		return fmt.Errorf("core: spec %q: unknown host API %d", s.Name, int(s.HostAPI))
	}
	if s.Block < BlockDMQBypass || s.Block > BlockNone {
		return fmt.Errorf("core: spec %q: unknown block layer %d", s.Name, int(s.Block))
	}
	if s.Transport < TransportQDMA || s.Transport > TransportHostOnly {
		return fmt.Errorf("core: spec %q: unknown transport %d", s.Name, int(s.Transport))
	}
	if s.Placement < PlacementRTL || s.Placement > PlacementSoftware {
		return fmt.Errorf("core: spec %q: unknown placement %d", s.Name, int(s.Placement))
	}
	if s.Fanout < FanoutCardRTL || s.Fanout > FanoutHostTCP {
		return fmt.Errorf("core: spec %q: unknown fanout %d", s.Name, int(s.Fanout))
	}
	if s.Cache < CacheNone || s.Cache > CacheLSVD {
		return fmt.Errorf("core: spec %q: unknown cache tier %d", s.Name, int(s.Cache))
	}
	if s.Replication < ReplPrimary || s.Replication > ReplRaft {
		return fmt.Errorf("core: spec %q: unknown replication protocol %d", s.Name, int(s.Replication))
	}

	// Replication ↔ pool: Raft groups replicate whole objects through a
	// per-PG log; EC stripes shard an object across k+m OSDs and have no
	// single log to replicate.
	if s.Replication == ReplRaft && s.EC {
		return fmt.Errorf("core: spec %q: replication %v applies to the replicated pool; it cannot drive erasure-coded stripes (drop ec)", s.Name, s.Replication)
	}

	// Cache tier ↔ host API/block layer: the LSVD cache is a kernel
	// block-layer citizen interposed under the ring target; the NBD
	// daemons run in user space and have no block layer to host it.
	if s.Cache == CacheLSVD {
		if s.HostAPI != HostIOUring {
			return fmt.Errorf("core: spec %q: cache tier %v lives under the kernel block layer and requires host API %v (the %v daemon runs in user space)", s.Name, s.Cache, HostIOUring, s.HostAPI)
		}
		if s.Block == BlockNone {
			return fmt.Errorf("core: spec %q: cache tier %v requires a kernel block layer (dmq-bypass or mq-deadline), not %v", s.Name, s.Cache, s.Block)
		}
	}
	if s.Cache == CacheNone && (s.CacheLogMB != 0 || s.CacheReadMB != 0 || s.CacheVerify || s.CacheAdmit) {
		return fmt.Errorf("core: spec %q: cache options (cachelog/cacheread/verify/cacheadmit) require %v", s.Name, CacheLSVD)
	}
	if s.CacheLogMB < 0 || s.CacheReadMB < 0 {
		return fmt.Errorf("core: spec %q: negative cache size (log=%d read=%d MiB)", s.Name, s.CacheLogMB, s.CacheReadMB)
	}

	// Host API ↔ block layer: io_uring submits into the kernel block
	// layer; the NBD daemons predate DMQ and never touch it.
	if s.HostAPI == HostIOUring && s.Block == BlockNone {
		return fmt.Errorf("core: spec %q: host API %v requires a kernel block layer (dmq-bypass or mq-deadline), not %v", s.Name, s.HostAPI, s.Block)
	}
	if s.HostAPI == HostNBD && s.Block != BlockNone {
		return fmt.Errorf("core: spec %q: host API %v runs in user space and cannot drive block layer %v (use noblock)", s.Name, s.HostAPI, s.Block)
	}

	// Block layer ↔ transport: DMQ issues into UIFD/QDMA hardware
	// contexts; with no card the kernel RBD target is host-only.
	if s.Transport == TransportQDMA && s.HostAPI != HostIOUring {
		return fmt.Errorf("core: spec %q: transport %v requires host API %v (UIFD binds blk-mq contexts to QDMA queue sets)", s.Name, s.Transport, HostIOUring)
	}
	if s.Transport == TransportLegacyDMA && s.HostAPI != HostNBD {
		return fmt.Errorf("core: spec %q: transport %v is driven by the user-space daemon and requires host API %v", s.Name, s.Transport, HostNBD)
	}
	if s.Block == BlockMQDeadline && s.Transport != TransportQDMA {
		return fmt.Errorf("core: spec %q: block layer %v only exists on the %v path", s.Name, s.Block, TransportQDMA)
	}

	// Placement ↔ transport: card kernels need a card; the software
	// client needs no card at all.
	cardTransport := s.Transport == TransportQDMA || s.Transport == TransportLegacyDMA
	if s.Placement != PlacementSoftware && !cardTransport {
		return fmt.Errorf("core: spec %q: placement %v runs on the card and requires transport %v or %v", s.Name, s.Placement, TransportQDMA, TransportLegacyDMA)
	}
	if s.Placement == PlacementSoftware && cardTransport {
		return fmt.Errorf("core: spec %q: placement %v needs no card; transport %v would carry requests to one", s.Name, s.Placement, s.Transport)
	}

	// Fanout ↔ placement/transport: a card NIC can only fan out what the
	// card placed; the host NIC serves the daemon and the software client.
	switch s.Fanout {
	case FanoutCardRTL, FanoutCardHLS:
		if s.Placement == PlacementSoftware {
			return fmt.Errorf("core: spec %q: fanout %v runs on the card and cannot use %v (the card never learns the placement)", s.Name, s.Fanout, s.Placement)
		}
	case FanoutHostTCP:
		if s.Placement != PlacementSoftware && s.Transport != TransportLegacyDMA {
			return fmt.Errorf("core: spec %q: fanout %v with card placement %v needs the %v offload round trip (the DeLiBA-1 shape)", s.Name, s.Fanout, s.Placement, TransportLegacyDMA)
		}
	}

	// EC needs an RS path: the card's RS accelerator or the software
	// client's codec. The D1 shape (card placement, host fan-out) has
	// neither.
	if s.EC && s.Fanout == FanoutHostTCP && s.Placement != PlacementSoftware {
		return errNoECInD1
	}

	// QoS ↔ block layer/transport: the QoS schedulers are blk-mq elevators
	// driving UIFD hardware contexts; they need the io_uring + QDMA path
	// and replace any other elevator.
	if s.QoS < QoSNone || s.QoS > QoSDMClock {
		return fmt.Errorf("core: spec %q: unknown QoS scheduler %d", s.Name, int(s.QoS))
	}
	if s.QoS != QoSNone {
		if s.Transport != TransportQDMA {
			return fmt.Errorf("core: spec %q: QoS %v schedules blk-mq hardware contexts and requires transport %v", s.Name, s.QoS, TransportQDMA)
		}
		if s.Block == BlockMQDeadline {
			return fmt.Errorf("core: spec %q: QoS %v installs its own elevator and conflicts with block layer %v (use dmq-bypass)", s.Name, s.QoS, s.Block)
		}
	}

	// Ring tuning is meaningless without rings.
	if s.HostAPI != HostIOUring && (s.RingInterrupt || s.Instances != 0 || s.RingEntries != 0) {
		return fmt.Errorf("core: spec %q: ring options (interrupt/instances/entries) require host API %v", s.Name, HostIOUring)
	}
	if s.Instances < 0 || s.Instances > 64 {
		return fmt.Errorf("core: spec %q: instances %d out of range [0,64]", s.Name, s.Instances)
	}
	if s.RingEntries < 0 {
		return fmt.Errorf("core: spec %q: negative ring entries %d", s.Name, s.RingEntries)
	}
	return nil
}

// ringInstances resolves the ring/queue count.
func (s StackSpec) ringInstances() int {
	if s.Instances > 0 {
		return s.Instances
	}
	return DKInstances
}

// ringDepth resolves the per-ring SQ depth.
func (s StackSpec) ringDepth() int {
	if s.RingEntries > 0 {
		return s.RingEntries
	}
	return ringEntries
}

// namedKind resolves one of the five stack names to its kind.
func namedKind(s string) (StackKind, bool) {
	for _, kind := range []StackKind{StackDKHW, StackDKSW, StackD2HW, StackD2SW, StackD1HW} {
		if s == kind.String() {
			return kind, true
		}
	}
	return 0, false
}

// applyToken applies one layer/option token to the spec.
func (spec *StackSpec) applyToken(tok string) error {
	if v, ok := strings.CutPrefix(tok, "instances="); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("core: bad instances %q", v)
		}
		spec.Instances = n
		return nil
	}
	if v, ok := strings.CutPrefix(tok, "entries="); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("core: bad entries %q", v)
		}
		spec.RingEntries = n
		return nil
	}
	if v, ok := strings.CutPrefix(tok, "cachelog="); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("core: bad cachelog %q", v)
		}
		spec.CacheLogMB = n
		return nil
	}
	if v, ok := strings.CutPrefix(tok, "cacheread="); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("core: bad cacheread %q", v)
		}
		spec.CacheReadMB = n
		return nil
	}
	switch tok {
	case "iouring":
		spec.HostAPI = HostIOUring
	case "nbd":
		spec.HostAPI = HostNBD
	case "dmq-bypass":
		spec.Block = BlockDMQBypass
	case "mq-deadline":
		spec.Block = BlockMQDeadline
	case "noblock":
		spec.Block = BlockNone
	case "qdma":
		spec.Transport = TransportQDMA
	case "legacy-dma":
		spec.Transport = TransportLegacyDMA
	case "hostonly":
		spec.Transport = TransportHostOnly
	case "rtl-crush":
		spec.Placement = PlacementRTL
	case "hls-crush":
		spec.Placement = PlacementHLS
	case "sw-crush":
		spec.Placement = PlacementSoftware
	case "card-rtl":
		spec.Fanout = FanoutCardRTL
	case "card-hls":
		spec.Fanout = FanoutCardHLS
	case "host-tcp":
		spec.Fanout = FanoutHostTCP
	case "ec":
		spec.EC = true
	case "interrupt":
		spec.RingInterrupt = true
	case "cache-lsvd":
		spec.Cache = CacheLSVD
	case "cache-none":
		spec.Cache = CacheNone
	case "repl-raft":
		spec.Replication = ReplRaft
	case "repl-primary":
		spec.Replication = ReplPrimary
	case "cacheadmit":
		spec.CacheAdmit = true
	case "qos-none":
		spec.QoS = QoSNone
	case "qos-tbucket":
		spec.QoS = QoSTokenBucket
	case "qos-dmclock":
		spec.QoS = QoSDMClock
	default:
		return fmt.Errorf("core: unknown stack layer token %q", tok)
	}
	return nil
}

// ParseStackSpec builds a spec from a command-line string: one of the
// five stack names ("deliba-k-hw", ...), a named stack extended with
// '+'-joined option tokens ("deliba-k-hw+cache-lsvd"), or a comma- or
// '+'-separated list of layer tokens and options, e.g.
//
//	"iouring,dmq-bypass,qdma,rtl-crush,card-rtl,ec,instances=1"
//
// Omitted layers default to the DeLiBA-K hardware pipeline; the result is
// validated.
func ParseStackSpec(s string) (StackSpec, error) {
	toks := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '+' })
	var spec StackSpec
	named := false
	for i := range toks {
		toks[i] = strings.TrimSpace(toks[i])
		tok := toks[i]
		if tok == "" {
			continue
		}
		if kind, ok := namedKind(tok); ok {
			if i != 0 {
				return StackSpec{}, fmt.Errorf("core: stack name %q must come first in %q", tok, s)
			}
			spec, _ = Spec(kind)
			named = true
			continue
		}
		if err := spec.applyToken(tok); err != nil {
			return StackSpec{}, err
		}
	}
	if named && len(toks) > 1 {
		// A named base with extensions keeps the readable compound name
		// ("deliba-k-hw+cache-lsvd"), normalised to '+' separators.
		spec.Name = strings.Join(toks, "+")
	} else if !named {
		spec.Name = spec.canonicalName()
	}
	if err := spec.Validate(); err != nil {
		return StackSpec{}, err
	}
	return spec, nil
}
