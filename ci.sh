#!/bin/sh
# ci.sh — the repo's tier-1 gate. Runs the full static + test + benchmark
# smoke suite; exits non-zero on the first failure.
#
#   ./ci.sh          # vet, build, race tests, benchmark smoke
#   ./ci.sh -short   # skip the benchmark smoke pass
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

if [ "${1:-}" != "-short" ]; then
    # One iteration of every benchmark with allocation counts: catches
    # bit-rot in the perf harness and regressions in the zero-alloc
    # invariants without a full measurement run.
    echo "== benchmark smoke (-benchtime=1x) =="
    go test -run '^$' -bench . -benchtime=1x -benchmem ./...
fi

echo "== delibabench self-test =="
go run ./cmd/delibabench -selftest -iters 3

echo "CI OK"
