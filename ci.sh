#!/bin/sh
# ci.sh — the repo's tier-1 gate. Runs the full static + test + benchmark
# smoke suite; exits non-zero on the first failure.
#
#   ./ci.sh          # vet, build, race tests, benchmark smoke
#   ./ci.sh -short   # skip the benchmark smoke pass
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The parallel experiment runner is the one place goroutines touch shared
# slices; race it explicitly so a future narrowing of the blanket run above
# cannot silently drop it. The fault layer and the degraded-read/resilience
# paths ride in the same stage: fault sweeps fan hermetic cells across the
# runner's workers, so they are the newest cross-goroutine surface.
echo "== go test -race (experiment runner + fault/resilience paths) =="
go test -race -count=1 ./internal/experiments/... ./internal/faults/... \
    ./internal/core/ ./internal/rados/ ./internal/erasure/

# Spec-table exhaustiveness: every named stack must assemble through
# BuildStack and serve I/O, every ablation spec must validate, and every
# invalid layer combination must be rejected — under the race detector, so
# a spec-table edit cannot land with an unbuildable row.
echo "== stack spec table (race) =="
go test -race -count=1 -run 'TestNamedSpecsBuild|TestBuildStack|TestParseStackSpec|TestSQFullBackoff' ./internal/core/
go test -race -count=1 -run 'TestAblationSpecsValid|TestGoldenDigests' ./internal/experiments/

# Fuzz seed corpus for the fused GF(256) kernel: runs the f.Add cases
# (length 0, sub-block, non-multiple-of-32 tails, misalignment) as plain
# tests — cheap enough for every CI run, -short included.
# Sharded engine: the conservative-lookahead barrier loop, the cross-shard
# network layer and the city-scale model are the only places worker
# goroutines run simulation events concurrently. Race the shard protocol
# tests plus a ScaleSweep smoke cell (256 OSDs across 1/2/8 shards)
# explicitly so the determinism property is always exercised under the
# detector.
echo "== sharded engine (race: shard protocol + scale smoke) =="
go test -race -count=1 -run 'TestShard|TestEngineReserve|TestFreelistCap|TestHeapRandomOrder' \
    ./internal/sim/ ./internal/netsim/
go test -race -count=1 -run 'TestScale' ./internal/rados/ ./internal/experiments/

# Write-back cache tier: the LSVD log/index/flush machinery runs a
# background flusher goroutine-equivalent inside the simulation plus the
# parallel sweep cells, so race the package and the cache sweep explicitly;
# the crash-recovery smoke pins the zero-acked-loss replay contract, and
# the split-domain smoke drives the host-domain client + cache against
# OSDs on a second shard.
echo "== lsvd cache tier (race: package + sweep + crash recovery) =="
go test -race -count=1 ./internal/lsvd/
go test -race -count=1 -run 'TestCrashRecovery' ./internal/lsvd/
go test -race -count=1 -run 'TestCacheSweep|TestCacheHit|TestParseCacheSpec|TestValidateRejectsCacheCombos' \
    ./internal/experiments/ ./internal/core/
echo "== split-domain testbed smoke (race, -shards 2) =="
go test -race -count=1 -run 'TestSplitDomain|TestFabricSplit' \
    ./internal/core/ ./internal/netsim/

# Per-I/O span tracing: the trace sweep fans traced cells across the
# runner's workers and, on split-domain testbeds, two shard workers feed
# one sink set — race the package plus the determinism/perturbation gates
# explicitly. TestTracingZeroPerturbation is the zero-cost-off contract's
# strong form (full-rate tracing leaves every statistic bit-identical);
# the golden-digest gate above already pins the tracing-off bytes.
echo "== trace subsystem (race: package + sweep determinism + zero perturbation) =="
go test -race -count=1 ./internal/trace/
go test -race -count=1 -run 'TestTraceSweep|TestTracingZeroPerturbation|TestTraceFileRoundTrip|TestFamilyProbe' \
    ./internal/experiments/
go test -race -count=1 -run 'TestStageProfile' ./internal/core/

# Fuzz seed corpus for the trace encoder: arbitrary span names, IDs and
# (possibly negative) times must encode to valid JSON that round-trips
# decode/re-encode idempotently.
echo "== trace encoder fuzz seeds =="
go test -run 'Fuzz' ./internal/trace/

# Fuzz seed corpus for the extent index: random overlapping insert/lookup
# sequences cross-checked against a flat shadow map, as plain tests.
echo "== lsvd extent-index fuzz seeds =="
go test -run 'Fuzz' ./internal/lsvd/

echo "== gf256 fuzz seeds =="
go test -run 'Fuzz' ./internal/gf256/

# Fuzz seed corpus for the retry backoff: bounds (jitter in [base, cap]),
# nil-rng upper-edge dominance, and same-seed replay, as plain tests.
echo "== faults backoff fuzz seeds =="
go test -run 'Fuzz' ./internal/faults/

# Multi-Raft replication backend: per-PG groups run leader election, log
# replication and snapshot catch-up inside the sim, and the replication
# head-to-head fans hermetic cells across the runner's workers — race the
# package plus the sweep's determinism/availability/deadline-budget gates
# explicitly, and run the wire-codec fuzz seed corpus as plain tests.
echo "== raft backend (race: package + replication head-to-head) =="
go test -race -count=1 ./internal/raft/
go test -race -count=1 -run 'TestRaftSweep|TestRaftElectionStorm' ./internal/experiments/
echo "== raft codec fuzz seeds =="
go test -run 'Fuzz' ./internal/raft/

# Multi-tenant QoS axis: the blk-mq elevators keep per-tenant state that
# must stay engine-local (the raced replica test proves it), the SR-IOV
# driver hashes tenants onto functions/queue sets, and the tenant sweep
# fans hermetic cells — including the 10k-tenant fleet column on the
# sharded ScaleCluster — across the runner's workers. Race the queueing
# layers plus the sweep's determinism/isolation gates explicitly.
echo "== multi-tenant QoS axis (race: blockmq + qdma + tenant sweep) =="
go test -race -count=1 ./internal/blockmq/ ./internal/qdma/ ./internal/uifd/
go test -race -count=1 -run 'TestTenantSweep|TestQoSScheduler' \
    ./internal/experiments/ ./internal/blockmq/
go test -race -count=1 -run 'TestTenant|TestRunTenants|TestQoSShapes|TestCompactHistogram|TestFairness' \
    ./internal/metrics/ ./internal/fio/

if [ "${1:-}" != "-short" ]; then
    # One iteration of every benchmark with allocation counts: catches
    # bit-rot in the perf harness and regressions in the zero-alloc
    # invariants without a full measurement run.
    echo "== benchmark smoke (-benchtime=1x) =="
    go test -run '^$' -bench . -benchtime=1x -benchmem ./...
fi

echo "== delibabench self-test =="
go run ./cmd/delibabench -selftest -iters 3

if [ "${1:-}" != "-short" ]; then
    # Machine-readable evidence artifact: per-family serial-vs-parallel
    # digests and wall-clock plus erasure-kernel micro-benchmarks. Fails if
    # any family digests differently under parallel execution.
    echo "== benchmark report (BENCH_pr2.json) =="
    go run ./cmd/delibabench -json BENCH_pr2.json

    # Cache tier evidence artifact: hit-rate sweep speedups, the 10x p50
    # target on the 90%-hot workload, serial-vs-parallel digest equality
    # and the zero acknowledged-write-loss crash contract.
    echo "== cache tier report (BENCH_pr7.json) =="
    go run ./cmd/delibabench -quick -cachebench BENCH_pr7.json

    # Replication head-to-head evidence artifact: primary-copy vs per-PG
    # Raft availability under faults, with the strictly-higher-availability
    # acceptance bar and serial-vs-parallel digest equality asserted.
    echo "== replication head-to-head report (BENCH_pr9.json) =="
    go run ./cmd/delibabench -quick -raftbench BENCH_pr9.json

    # Multi-tenant QoS evidence artifact: the noisy-neighbor head-to-head
    # (dmclock victim p99 near the isolated baseline, qos-none blown out,
    # fairness improved) plus serial-vs-parallel digest equality at quick
    # scale with relaxed gates; the full-scale gates run out of band.
    echo "== multi-tenant QoS report (BENCH_pr10.quick.json) =="
    go run ./cmd/delibabench -quick -tenantbench BENCH_pr10.quick.json

    # Trace smoke: emit the traced sweep and validate it against the
    # Chrome/Perfetto trace_event schema with the offline tool.
    echo "== trace smoke (-trace + dfxtool trace validate) =="
    go run ./cmd/delibabench -quick -trace TRACE_pr8.json
    go run ./cmd/dfxtool trace validate TRACE_pr8.json
    go run ./cmd/dfxtool trace summary TRACE_pr8.json
fi

echo "CI OK"
