// OLAP example: the industrial partner's analytical workload — full table
// scans as large sequential reads with aggregation compute between batches
// — run end to end on each framework generation. Reproduces the paper's
// claim that data-intensive tasks finish ~30% faster on DeLiBA-K.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/sim"
)

// tableScan models scanning a 1.5 GB table in 512 kB reads with per-batch
// aggregation compute, plus a 10% spill-write share.
func tableScan(kind core.StackKind) (*fio.Result, error) {
	tb, err := core.NewTestbed(core.DefaultTestbedConfig())
	if err != nil {
		return nil, err
	}
	stack, err := tb.NewStack(kind, false)
	if err != nil {
		return nil, err
	}
	const scanBytes = int64(256) << 20
	const blockSize = 512 * 1024
	ops := int(scanBytes / int64(blockSize))
	return fio.Run(tb.Eng, stack, fio.JobSpec{
		Name:       "olap-scan",
		ReadPct:    90,
		Pattern:    core.Seq,
		BlockSize:  blockSize,
		QueueDepth: 1, // scan → aggregate → next batch
		Jobs:       1,
		Ops:        ops,
		ThinkTime:  1100 * sim.Microsecond, // aggregation per 512 kB batch
		Seed:       7,
	})
}

func main() {
	fmt.Println("OLAP table scan (256 MB, 512 kB batches, 90/10 read/write, aggregation compute)")
	var base sim.Duration
	for _, kind := range []core.StackKind{core.StackD1HW, core.StackD2HW, core.StackDKHW} {
		res, err := tableScan(kind)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("  %-12s: query time %10v  scan rate %7.1f MB/s",
			kind, res.Elapsed, res.MBps())
		if kind == core.StackD2HW {
			base = res.Elapsed
		}
		if kind == core.StackDKHW && base > 0 {
			line += fmt.Sprintf("  (%.0f%% faster than DeLiBA-2; paper: ~30%%)",
				(1-float64(res.Elapsed)/float64(base))*100)
		}
		fmt.Println(line)
	}
}
