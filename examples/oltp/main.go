// OLTP example: the transactional half of the industrial workload — small
// random reads and writes with transaction logic between I/Os — comparing
// sustained transaction rate and p99 latency across framework generations.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/sim"
)

// transactionMix models an OLTP engine: 8 kB pages, 70% reads, random
// access, modest per-transaction compute, deep client concurrency.
func transactionMix(kind core.StackKind) (*fio.Result, error) {
	tb, err := core.NewTestbed(core.DefaultTestbedConfig())
	if err != nil {
		return nil, err
	}
	stack, err := tb.NewStack(kind, false)
	if err != nil {
		return nil, err
	}
	return fio.Run(tb.Eng, stack, fio.JobSpec{
		Name:       "oltp",
		ReadPct:    70,
		Pattern:    core.Rand,
		BlockSize:  8192,
		QueueDepth: 1, // page in, transaction logic, commit
		Jobs:       1,
		Ops:        3000,
		RampOps:    300,
		ThinkTime:  25 * sim.Microsecond,
		Seed:       11,
	})
}

func main() {
	fmt.Println("OLTP transaction mix (8 kB pages, 70/30 read/write, random)")
	results := map[core.StackKind]*fio.Result{}
	for _, kind := range []core.StackKind{core.StackD2SW, core.StackD2HW, core.StackDKHW} {
		res, err := transactionMix(kind)
		if err != nil {
			log.Fatal(err)
		}
		results[kind] = res
		fmt.Printf("  %-12s: %8.1f kIOPS  p50 %8v  p99 %8v\n",
			kind, res.KIOPS(), res.Lat.Median(), res.Lat.Percentile(99))
	}
	dk, d2 := results[core.StackDKHW], results[core.StackD2HW]
	fmt.Printf("\nDeLiBA-K sustains %.2fx the transaction rate of DeLiBA-2 and cuts\n", dk.KIOPS()/d2.KIOPS())
	fmt.Printf("execution time by %.0f%% for the same transaction count (paper: ~30%%).\n",
		(1-float64(dk.Elapsed)/float64(d2.Elapsed))*100)
}
