// Fault-tolerance example: exercises the functional data path end to end —
// write real bytes through the RBD/rados stack into an erasure-coded pool,
// fail two OSDs holding data shards, and read everything back intact via
// Reed-Solomon reconstruction. Also shows CRUSH remapping a replicated
// pool's placements around a failed device.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/crush"
	"repro/internal/netsim"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	fabric := netsim.NewFabric(eng, 2*sim.Microsecond)
	cfg := rados.DefaultClusterConfig() // 2 nodes x 16 OSDs, MemStore
	cluster, err := rados.NewCluster(eng, fabric, cfg)
	if err != nil {
		log.Fatal(err)
	}
	client, err := rados.NewClient(cluster, "client", 10e9, netsim.SoftwareStack)
	if err != nil {
		log.Fatal(err)
	}
	ecPool, err := cluster.CreateECPool("ec42", 4, 2, 128)
	if err != nil {
		log.Fatal(err)
	}
	replPool, err := cluster.CreateReplicatedPool("r2", 2, 128)
	if err != nil {
		log.Fatal(err)
	}
	img, err := rbd.NewImage("vol", 64<<20, 4<<20, ecPool)
	if err != nil {
		log.Fatal(err)
	}
	dev := rbd.NewDev(img, client)

	const chunk = 16 * 1024
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = make([]byte, chunk)
		for j := range payloads[i] {
			payloads[i][j] = byte(i*31 + j)
		}
	}

	eng.Spawn("demo", func(p *sim.Proc) {
		fmt.Println("writing 8 x 16 kB extents into the EC(4+2) image...")
		for i, data := range payloads {
			if err := dev.WriteAt(p, int64(i)*chunk, data); err != nil {
				log.Fatalf("write %d: %v", i, err)
			}
		}

		// Fail two OSDs that hold shards of extent 0.
		acting, err := cluster.ActingSet(ecPool, cluster.PGOf(ecPool, img.ObjectName(0)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("extent 0 shard placement (k=4, m=2): OSDs %v\n", acting)
		cluster.OSDs[acting[0]].SetUp(false)
		cluster.OSDs[acting[1]].SetUp(false)
		fmt.Printf("failed osd.%d and osd.%d (two data shards lost)\n", acting[0], acting[1])

		fmt.Println("reading everything back (degraded, reconstructing)...")
		for i, want := range payloads {
			got, err := dev.ReadAt(p, int64(i)*chunk, chunk)
			if err != nil {
				log.Fatalf("degraded read %d: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				log.Fatalf("extent %d corrupted after reconstruction", i)
			}
		}
		fmt.Println("all extents intact: Reed-Solomon reconstruction verified ✔")

		// CRUSH remapping demo on the replicated pool.
		reweight := make([]uint32, cluster.Map.MaxDevices())
		for i := range reweight {
			reweight[i] = crush.WeightOne
		}
		const failed = 5
		reweight[failed] = 0
		moved := 0
		const samples = 2000
		for x := uint32(0); x < samples; x++ {
			before, _ := cluster.Map.Select(cluster.Map.Rule("replicated_osd"), x, replPool.Size, nil)
			after, _ := cluster.Map.Select(cluster.Map.Rule("replicated_osd"), x, replPool.Size, reweight)
			if !equalSets(before, after) {
				moved++
			}
		}
		fmt.Printf("CRUSH: marking osd.%d out remaps %.1f%% of placements (ideal ≈ %.1f%%)\n",
			failed, 100*float64(moved)/samples, 100*float64(replPool.Size)/32)
	})
	eng.Run()
	fmt.Printf("simulation finished at t=%v\n", eng.Now())
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]int{}
	for _, v := range a {
		m[v]++
	}
	for _, v := range b {
		m[v]--
	}
	for _, c := range m {
		if c != 0 {
			return false
		}
	}
	return true
}
