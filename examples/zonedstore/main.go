// Zoned-storage example: the local-device side of UIFD — a host-managed
// ZNS namespace exposed through the same blk-mq machinery as the FPGA path
// (paper §III-B: UIFD supports "emerging local storage such as ZNS and SMR
// disks"). Demonstrates the zoned-write contract, contract violations
// surfacing as I/O errors, zone append, and zone reset.
package main

import (
	"fmt"
	"log"

	"repro/internal/blockmq"
	"repro/internal/sim"
	"repro/internal/uifd"
	"repro/internal/zoned"
)

func main() {
	eng := sim.NewEngine()
	dev, err := zoned.New(zoned.ZNSConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	drv := uifd.NewZonedDriver(eng, zoned.NewServiceModel(eng, dev))
	mq, err := blockmq.New(eng, blockmq.Config{
		CPUs: 2, HWQueues: 2, TagsPerHW: 16, Bypass: true,
	}, drv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ZNS namespace: %d zones x %d MiB (%d GiB), max %d open zones\n",
		dev.Zones(), (64<<20)/(1<<20), dev.Size()>>30, 14)

	eng.Spawn("demo", func(p *sim.Proc) {
		// 1. Sequential writes into zone 0 through the block layer.
		fmt.Println("\n1. sequential writes into zone 0:")
		for i := 0; i < 4; i++ {
			c := eng.NewCompletion()
			mq.Submit(p, blockmq.OpWrite, int64(i)*65536, 65536, 0,
				func(err error) { c.Complete(nil, err) })
			if _, err := p.Await(c); err != nil {
				log.Fatalf("  write %d: %v", i, err)
			}
		}
		z, _ := dev.Zone(0)
		fmt.Printf("   wrote 4 x 64 kB; zone 0 state=%v wp=%d kB\n", z.State, z.WP/1024)

		// 2. A write that violates the write pointer fails cleanly.
		fmt.Println("\n2. write-pointer violation:")
		c := eng.NewCompletion()
		mq.Submit(p, blockmq.OpWrite, 1<<20, 4096, 0,
			func(err error) { c.Complete(nil, err) })
		if _, err := p.Await(c); err != nil {
			fmt.Printf("   rejected as expected: %v\n", err)
		} else {
			log.Fatal("   contract violation was accepted!")
		}

		// 3. Zone append lets the device pick the offset.
		fmt.Println("\n3. zone append into zone 5:")
		for i := 0; i < 3; i++ {
			off, err := drv.AppendWait(p, 5, 16384)
			if err != nil {
				log.Fatalf("  append: %v", err)
			}
			fmt.Printf("   appended 16 kB at offset %d\n", off)
		}

		// 4. Reset and reuse.
		fmt.Println("\n4. zone reset:")
		cr := eng.NewCompletion()
		drv.ResetZone(0, func(err error) { cr.Complete(nil, err) })
		if _, err := p.Await(cr); err != nil {
			log.Fatal(err)
		}
		cw := eng.NewCompletion()
		mq.Submit(p, blockmq.OpWrite, 0, 4096, 0,
			func(err error) { cw.Complete(nil, err) })
		if _, err := p.Await(cw); err != nil {
			log.Fatal(err)
		}
		fmt.Println("   zone 0 reset and rewritten from the start ✔")
	})
	eng.Run()

	reads, writes, errs := drv.Stats()
	w, r, a, resets := dev.Stats()
	fmt.Printf("\ndriver: %d reads, %d writes, %d contract errors\n", reads, writes, errs)
	fmt.Printf("device: %d writes, %d reads, %d appends, %d resets (t=%v)\n",
		w, r, a, resets, eng.Now())
	fmt.Println("\nzone report:")
	for _, rep := range dev.ReportZones()[:6] {
		fmt.Printf("  zone %2d  %-12v state=%-8v wp=%d\n", rep.Index, rep.Type, rep.State, rep.WP)
	}
}
