// Quickstart: build the paper's testbed, run a 4 kB random-write workload
// on hardware-accelerated DeLiBA-K and on the DeLiBA-2 baseline, and print
// the speed-up — the headline experiment in ~40 lines.
package main

import (
	"fmt"
	"log"

	deliba "repro"
)

func run(kind deliba.StackKind) *deliba.Result {
	tb, err := deliba.NewTestbed(deliba.DefaultTestbedConfig())
	if err != nil {
		log.Fatal(err)
	}
	stack, err := tb.NewStack(kind, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := deliba.RunWorkload(tb, stack, deliba.Workload{
		ReadPct:    0,
		Random:     true,
		BlockSize:  4096,
		QueueDepth: 16,
		Jobs:       3,
		Ops:        1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("DeLiBA-K quickstart: 4 kB random writes, 3 jobs, QD 16")
	dk := run(deliba.StackDKHW)
	d2 := run(deliba.StackD2HW)
	fmt.Printf("  deliba-k-hw: %8.1f MB/s  %6.1f kIOPS  mean latency %v\n",
		dk.MBps(), dk.KIOPS(), dk.Lat.Mean())
	fmt.Printf("  deliba-2-hw: %8.1f MB/s  %6.1f kIOPS  mean latency %v\n",
		d2.MBps(), d2.KIOPS(), d2.Lat.Mean())
	fmt.Printf("  speed-up:    %.2fx throughput (paper: up to 3.45x)\n",
		dk.MBps()/d2.MBps())
}
