// Multi-tenant example: the SR-IOV support DeLiBA-K added for the
// industrial lab — a bare-metal tenant on the physical function and a VM
// tenant on a virtual function share one QDMA core and card, each with its
// own UIFD driver, queue sets, and block-layer instance.
package main

import (
	"fmt"
	"log"

	"repro/internal/blockmq"
	"repro/internal/qdma"
	"repro/internal/sim"
	"repro/internal/uifd"
)

// tenantBackend is a stand-in card pipeline with a fixed service time, so
// the example focuses on the queueing/virtualisation machinery.
type tenantBackend struct {
	eng     *sim.Engine
	latency sim.Duration
	served  map[int]int
}

func (b *tenantBackend) Process(req uifd.CardRequest, done func(err error)) {
	b.served[req.Tenant]++
	b.eng.Schedule(b.latency, func() { done(nil) })
}

func main() {
	eng := sim.NewEngine()
	qe := qdma.New(eng, qdma.DefaultConfig())
	backend := &tenantBackend{eng: eng, latency: 25 * sim.Microsecond, served: map[int]int{}}
	tenancy := uifd.NewTenancy(eng, qe)

	bare, err := tenancy.AddTenant(uifd.BareMetal, 3, qdma.ReplicationQueue, backend)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := tenancy.AddTenant(uifd.VirtualMachine, 2, qdma.ErasureQueue, backend)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant 0: %v function, %d queue sets (%v)\n",
		kindName(bare.Function().Kind), len(bare.QueueSets()), qdma.ReplicationQueue)
	fmt.Printf("tenant 1: %v function, %d queue sets (%v)\n",
		kindName(vm.Function().Kind), len(vm.QueueSets()), qdma.ErasureQueue)

	mqBare, err := blockmq.New(eng, blockmq.Config{CPUs: 3, HWQueues: 3, TagsPerHW: 32, Bypass: true}, bare)
	if err != nil {
		log.Fatal(err)
	}
	mqVM, err := blockmq.New(eng, blockmq.Config{CPUs: 2, HWQueues: 2, TagsPerHW: 32, Bypass: true}, vm)
	if err != nil {
		log.Fatal(err)
	}

	// Both tenants hammer the shared card concurrently.
	const perTenant = 400
	doneBare, doneVM := 0, 0
	eng.Spawn("bare-metal", func(p *sim.Proc) {
		for i := 0; i < perTenant; i++ {
			mqBare.Submit(p, blockmq.OpWrite, int64(i)*4096, 4096, i%3, func(error) { doneBare++ })
			p.Sleep(2 * sim.Microsecond)
		}
	})
	eng.Spawn("vm", func(p *sim.Proc) {
		for i := 0; i < perTenant; i++ {
			mqVM.Submit(p, blockmq.OpRead, int64(i)*8192, 8192, i%2, func(error) { doneVM++ })
			p.Sleep(3 * sim.Microsecond)
		}
	})
	end := eng.Run()

	fmt.Printf("\nafter %v of simulated load:\n", end)
	fmt.Printf("  bare-metal tenant completed %d/%d writes (card saw %d)\n",
		doneBare, perTenant, backend.served[0])
	fmt.Printf("  VM tenant completed %d/%d reads  (card saw %d)\n",
		doneVM, perTenant, backend.served[1])
	tr, bytes, stalls := qe.Stats()
	fmt.Printf("  shared QDMA core: %d transfers, %d bytes moved, %d admission stalls\n",
		tr, bytes, stalls)
	fmt.Printf("  queue sets allocated: %d of %d\n", qe.QueueSets(), qdma.MaxQueueSets)
	if doneBare == perTenant && doneVM == perTenant {
		fmt.Println("tenant isolation verified: both tenants completed all I/O on one card ✔")
	}
}

func kindName(k qdma.FuncKind) string {
	if k == qdma.PF {
		return "PF (physical)"
	}
	return "VF (virtual)"
}
