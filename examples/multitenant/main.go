// Multi-tenant example: the full DeLiBA-K hardware stack shared by a
// Zipf-skewed tenant population while tenant 1 turns noisy neighbor —
// 256 KiB writes at QD 64 against everyone else's 4 KiB traffic. The same
// run repeats across the blk-mq QoS axis (DESIGN.md §9.12): no scheduling,
// a per-tenant token bucket, and dmclock with cost-normalized tags. Tenant
// identity rides each I/O from the io_uring SQE through blk-mq, the SR-IOV
// driver and the cluster fan-out, so one stack serves every tenant.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fio"
)

const tenants = 8

func run(qos core.QoSKind) (*fio.TenantResult, *core.Testbed) {
	tb, err := core.NewTestbed(core.DefaultTestbedConfig())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := core.Spec(core.StackDKHW)
	if err != nil {
		log.Fatal(err)
	}
	spec.QoS = qos
	stack, err := tb.BuildStack(spec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fio.RunTenants(tb.Eng, stack, fio.TenantJob{
		Job: fio.JobSpec{
			Name:       "victims",
			ReadPct:    70,
			Pattern:    core.Rand,
			BlockSize:  4096,
			QueueDepth: 8,
			Jobs:       3,
			Ops:        600,
			Seed:       42,
		},
		Tenants:      tenants,
		TenantTheta:  0.9,
		Hog:          1, // tenant 1 goes rogue
		HogDepth:     64,
		HogBlockSize: 256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res, tb
}

func main() {
	fmt.Printf("multi-tenant noisy neighbor: %d tenants on deliba-k-hw, "+
		"tenant 1 hogging with 256 KiB x QD64\n\n", tenants)
	fmt.Printf("%-12s %12s %12s %12s %10s %10s\n",
		"qos", "victim p50", "victim p99", "hog p99", "fairness", "throttled")
	for _, qos := range []core.QoSKind{core.QoSNone, core.QoSTokenBucket, core.QoSDMClock} {
		res, tb := run(qos)
		vh := res.VictimHist()
		var throttled uint64
		if tb.QoSSched != nil {
			throttled = tb.QoSSched.QoS().Throttled
		}
		fmt.Printf("%-12s %12v %12v %12v %10.3f %10d\n",
			qos, vh.Percentile(50), vh.Percentile(99),
			res.HogHist().Percentile(99), res.Fairness, throttled)
	}
	fmt.Println("\nfairness is Jain's index over cost-normalized service shares")
	fmt.Println("during the contention window; 1.0 = perfectly even slices.")
	fmt.Println("dmclock charges the hog 64 units per 256 KiB op, so victims keep")
	fmt.Println("their tail while the hog is shaped — without a stack per tenant.")
}
