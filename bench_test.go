// Benchmarks regenerating every table and figure of the paper (one bench
// per artifact, as indexed in DESIGN.md §5). Each iteration runs the
// corresponding experiment at reduced scale and reports the headline values
// as custom metrics, so `go test -bench=.` doubles as a smoke-level
// reproduction; cmd/delibabench runs the full-scale version.
package deliba

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fio"
)

func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Ops = 200
	cfg.LatOps = 60
	return cfg
}

// BenchmarkFig3SoftwareReplication regenerates Fig. 3: the software
// baseline in replication mode (DK-SW vs D2-SW latency and throughput).
func BenchmarkFig3SoftwareReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			dk, _ := res.LatencyOf(core.StackDKSW, "rand-read", 4096)
			d2, _ := res.LatencyOf(core.StackD2SW, "rand-read", 4096)
			b.ReportMetric(dk.Microseconds(), "dk-sw-rand-read-µs")
			b.ReportMetric(d2.Microseconds(), "d2-sw-rand-read-µs")
		}
	}
}

// BenchmarkFig4SoftwareErasure regenerates Fig. 4 (EC mode baseline).
func BenchmarkFig4SoftwareErasure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			dk, _ := res.LatencyOf(core.StackDKSW, "rand-write", 4096)
			b.ReportMetric(dk.Microseconds(), "dk-sw-ec-rand-write-µs")
		}
	}
}

// BenchmarkTable1Kernels regenerates Table I: per-kernel software profile
// (really executing this repo's CRUSH/RS implementations) plus the hardware
// model's cycle/latency columns.
func BenchmarkTable1Kernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rows[1].GoSWTime.Nanoseconds()), "straw2-go-sw-ns")
			b.ReportMetric(rows[1].ModelLatency.Microseconds()*1000, "straw2-rtl-ns")
		}
	}
}

// BenchmarkFig6HWReplicationThroughput and BenchmarkFig7HWReplicationIOPS
// regenerate the replication hardware sweep (one sweep backs both figures).
func BenchmarkFig6HWReplicationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.Fig6and7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			sp, _ := sweep.Speedup("rand-write", 4096)
			b.ReportMetric(sp, "dk/d2-4k-randwrite-x")
		}
	}
}

// BenchmarkFig7HWReplicationIOPS reports the KIOPS view at the paper's
// 4 kB random-write point.
func BenchmarkFig7HWReplicationIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.Fig6and7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			h := experiments.Headline(sweep)
			b.ReportMetric(h.BestIOPSGain, "best-iops-gain-x")
		}
	}
}

// BenchmarkFig8HWErasureThroughput regenerates the EC hardware sweep
// (DeLiBA-2 vs DeLiBA-K only; D1 had no EC accelerators).
func BenchmarkFig8HWErasureThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.Fig8and9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			sp, _ := sweep.Speedup("rand-write", 4096)
			b.ReportMetric(sp, "dk/d2-ec-4k-randwrite-x")
		}
	}
}

// BenchmarkFig9HWErasureIOPS is the KIOPS view of the EC sweep.
func BenchmarkFig9HWErasureIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.Fig8and9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			h := experiments.Headline(sweep)
			b.ReportMetric(h.BestIOPSGain, "best-ec-iops-gain-x")
		}
	}
}

// BenchmarkTable2Latency regenerates Table II: 4 kB end-to-end latency of
// D1/D2/DK (replication) and D2/DK (EC).
func BenchmarkTable2Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			dk, _ := res.Latency(core.StackDKHW, false, "rand-read")
			d2, _ := res.Latency(core.StackD2HW, false, "rand-read")
			b.ReportMetric(dk.Microseconds(), "dk-rand-read-µs")
			b.ReportMetric(d2.Microseconds(), "d2-rand-read-µs")
		}
	}
}

// BenchmarkTable3Resources emits the resource-utilisation report from the
// FPGA device model.
func BenchmarkTable3Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) != 2 {
			b.Fatal("table3 shape wrong")
		}
	}
}

// BenchmarkPowerModel reproduces the §V-c power measurement (195 W without
// partial reconfiguration, 170 W with it).
func BenchmarkPowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.Power()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(p.StaticWatts, "static-W")
			b.ReportMetric(p.DFXWatts, "dfx-W")
		}
	}
}

// BenchmarkRealWorldOLAP reproduces the ~30% execution-time reduction for
// the analytical workload.
func BenchmarkRealWorldOLAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.OLAP(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Reduction()*100, "exec-time-reduction-%")
		}
	}
}

// BenchmarkRealWorldOLTP is the transactional counterpart.
func BenchmarkRealWorldOLTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.OLTP(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Reduction()*100, "exec-time-reduction-%")
		}
	}
}

// BenchmarkAblationSQPoll isolates optimization ① (kernel-polled rings).
func BenchmarkAblationSQPoll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationSQPoll(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(a.Gain(), "sqpoll-gain-x")
		}
	}
}

// BenchmarkAblationSchedulerBypass isolates optimization ② (DMQ bypass).
func BenchmarkAblationSchedulerBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationSchedulerBypass(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(a.Gain(), "bypass-gain-x")
		}
	}
}

// BenchmarkDFXReconfiguration exercises optimization ⑤ (live RM swaps).
func BenchmarkDFXReconfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.DFX()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.SwapTimes["uniform"])/1e6, "rm-swap-ms")
		}
	}
}

// BenchmarkStackDKHW4kRandWrite is the raw headline datapoint: DeLiBA-K
// hardware, 4 kB random writes at the paper's queue configuration.
func BenchmarkStackDKHW4kRandWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(core.DefaultTestbedConfig())
		if err != nil {
			b.Fatal(err)
		}
		stack, err := tb.NewStack(core.StackDKHW, false)
		if err != nil {
			b.Fatal(err)
		}
		res, err := fio.Run(tb.Eng, stack, fio.JobSpec{
			Name: "bench", ReadPct: 0, Pattern: core.Rand,
			BlockSize: 4096, QueueDepth: 16, Jobs: 3, Ops: 300, RampOps: 30, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.KIOPS(), "kIOPS")
			b.ReportMetric(res.MBps(), "MB/s")
		}
	}
}
