package deliba

import "testing"

// TestPublicAPIQuickstart exercises the facade the README documents.
func TestPublicAPIQuickstart(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tb.NewStack(StackDKHW, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkload(tb, stack, Workload{
		ReadPct:    0,
		Random:     true,
		BlockSize:  4096,
		QueueDepth: 8,
		Jobs:       3,
		Ops:        100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.KIOPS() <= 0 || res.MBps() <= 0 {
		t.Fatal("no throughput measured")
	}
	if res.Lat.Mean() < 10*Microsecond {
		t.Fatalf("latency %v implausibly low", res.Lat.Mean())
	}
}

// TestPublicAPIComparison runs the headline DK-vs-D2 comparison through the
// facade only.
func TestPublicAPIComparison(t *testing.T) {
	run := func(kind StackKind) float64 {
		tb, err := NewTestbed(DefaultTestbedConfig())
		if err != nil {
			t.Fatal(err)
		}
		stack, err := tb.NewStack(kind, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWorkload(tb, stack, Workload{
			ReadPct: 0, Random: true, BlockSize: 4096,
			QueueDepth: 16, Jobs: 3, Ops: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	dk := run(StackDKHW)
	d2 := run(StackD2HW)
	if dk <= d2 {
		t.Fatalf("DK (%.1f MB/s) not above D2 (%.1f MB/s)", dk, d2)
	}
}

// TestPublicAPIErasure covers the EC pool path and the D1 restriction.
func TestPublicAPIErasure(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	stack, err := tb.NewStack(StackDKHW, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkload(tb, stack, Workload{
		ReadPct: 50, Random: true, BlockSize: 8192,
		QueueDepth: 4, Jobs: 2, Ops: 60,
	})
	if err != nil || res.Errors != 0 {
		t.Fatalf("EC run: %v, errors=%d", err, res.Errors)
	}
	tb2, _ := NewTestbed(DefaultTestbedConfig())
	if _, err := tb2.NewStack(StackD1HW, true); err == nil {
		t.Fatal("DeLiBA-1 EC stack should be rejected")
	}
}
