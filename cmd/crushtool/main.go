// Command crushtool builds and inspects CRUSH maps: it prints the bucket
// hierarchy, simulates placements for a range of inputs, and reports the
// per-device distribution quality — the software analogue of Ceph's
// crushtool --test.
//
// Usage:
//
//	crushtool -hosts 2 -osds 16 -alg straw2 -rule replicated -reps 2 -samples 10000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/crush"
	"repro/internal/metrics"
)

var algNames = map[string]crush.Alg{
	"uniform": crush.UniformAlg,
	"list":    crush.ListAlg,
	"tree":    crush.TreeAlg,
	"straw":   crush.StrawAlg,
	"straw2":  crush.Straw2Alg,
}

func main() {
	hosts := flag.Int("hosts", 2, "number of host buckets")
	osds := flag.Int("osds", 16, "OSDs per host")
	algName := flag.String("alg", "straw2", "bucket algorithm (uniform|list|tree|straw|straw2)")
	ruleName := flag.String("rule", "replicated", "rule to test (replicated|ec)")
	reps := flag.Int("reps", 2, "replicas / shards to place")
	samples := flag.Int("samples", 10000, "placement inputs to simulate")
	failOSD := flag.Int("fail", -1, "mark one OSD out and report movement")
	decompile := flag.Bool("decompile", false, "print the map in crushtool text format and exit")
	flag.Parse()

	alg, ok := algNames[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "crushtool: unknown alg %q\n", *algName)
		os.Exit(2)
	}
	m, root, err := crush.BuildCluster(crush.ClusterSpec{
		Hosts:       *hosts,
		OSDsPerHost: *osds,
		HostAlg:     alg,
		RootAlg:     alg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crushtool:", err)
		os.Exit(1)
	}
	if *decompile {
		if err := m.EncodeText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "crushtool:", err)
			os.Exit(1)
		}
		return
	}
	rule := m.Rule("replicated_rule")
	if *ruleName == "ec" {
		rule = m.Rule("ec_rule")
	}

	fmt.Printf("# map: %d hosts x %d osds, alg=%s, total weight %.1f\n",
		*hosts, *osds, alg, float64(m.TotalWeight())/float64(crush.WeightOne))
	for _, id := range m.Buckets() {
		b := m.Bucket(id)
		fmt.Printf("bucket %d type=%s alg=%v items=%d weight=%.1f\n",
			id, m.TypeName(b.Type), b.Alg, b.Size(),
			float64(b.Weight())/float64(crush.WeightOne))
	}
	_ = root

	counts := make([]int, m.MaxDevices())
	bad := 0
	for x := 0; x < *samples; x++ {
		out, err := m.Select(rule, uint32(x), *reps, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crushtool:", err)
			os.Exit(1)
		}
		if len(out) < *reps {
			bad++
		}
		for _, o := range out {
			if o >= 0 && o < len(counts) {
				counts[o]++
			}
		}
	}
	min, max, total := counts[0], counts[0], 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		total += c
	}
	mean := float64(total) / float64(len(counts))
	t := metrics.NewTable("placement distribution", "metric", "value")
	t.AddRow("samples", *samples)
	t.AddRow("underfilled placements", bad)
	t.AddRow("mean per OSD", mean)
	t.AddRow("min per OSD", min)
	t.AddRow("max per OSD", max)
	t.AddRow("spread (max/mean)", float64(max)/mean)
	fmt.Println(t)

	if *failOSD >= 0 && *failOSD < m.MaxDevices() {
		reweight := make([]uint32, m.MaxDevices())
		for i := range reweight {
			reweight[i] = crush.WeightOne
		}
		reweight[*failOSD] = 0
		moved := 0
		for x := 0; x < *samples; x++ {
			before, _ := m.Select(rule, uint32(x), *reps, nil)
			after, _ := m.Select(rule, uint32(x), *reps, reweight)
			if !sameSet(before, after) {
				moved++
			}
		}
		fmt.Printf("failing osd.%d moves %d/%d placements (%.1f%%; ideal ≈ %.1f%%)\n",
			*failOSD, moved, *samples, 100*float64(moved)/float64(*samples),
			100*float64(*reps)/float64(m.MaxDevices()))
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]int{}
	for _, v := range a {
		seen[v]++
	}
	for _, v := range b {
		seen[v]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}
