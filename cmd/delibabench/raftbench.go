package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// raftBenchReport is the -raftbench artifact: the replication head-to-head
// grid (primary-copy vs per-PG multi-Raft across the fault scenario axis)
// with the tentpole acceptance evidence — Raft strictly above primary-copy
// in measured availability under both the silent OSD crash and the node
// partition — plus serial-vs-parallel digest equality like every other
// family.
type raftBenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	HostCPUs   int    `json:"host_cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Stack  string  `json:"base_stack"`
	WallMs float64 `json:"wall_ms"`

	Digest        string `json:"digest"`
	DigestMatches bool   `json:"digest_matches_serial"`

	// AvailDelta is raft minus primary-copy availability per scenario;
	// Target* is the acceptance evidence on the two stressed scenarios.
	AvailDelta      map[string]float64 `json:"avail_delta_by_scenario"`
	TargetScenarios []string           `json:"target_scenarios"`
	TargetMet       bool               `json:"target_met_raft_above_primary"`

	Cells []raftCellJSON `json:"cells"`
}

type raftCellJSON struct {
	Repl         string  `json:"repl"`
	Scenario     string  `json:"scenario"`
	Ops          int     `json:"ops"`
	Errors       int     `json:"errors"`
	AvailPct     float64 `json:"avail_pct"`
	OpAvailPct   float64 `json:"op_avail_pct"`
	Stalls       uint64  `json:"write_stalls"`
	StallTotalUs float64 `json:"stall_total_us"`
	StallMaxUs   float64 `json:"stall_max_us"`
	MeanUs       float64 `json:"mean_us"`
	P99Us        float64 `json:"p99_us"`
	P999Us       float64 `json:"p999_us"`
	Elections    uint64  `json:"elections"`
	Redirects    uint64  `json:"redirects"`
	Commits      uint64  `json:"commits"`
}

// runRaftBench runs the replication head-to-head twice — at the configured
// parallelism and serially — writes the JSON artifact, and fails if the
// digests diverge or the availability acceptance bar is missed.
func runRaftBench(path string, quick bool) error {
	cfg := experiments.Full()
	if quick {
		cfg = experiments.Quick()
	}
	start := time.Now()
	res, err := experiments.RaftSweep(cfg)
	if err != nil {
		return fmt.Errorf("raftbench: %w", err)
	}
	wall := time.Since(start)
	prev := experiments.SetParallelism(1)
	serial, err := experiments.RaftSweep(cfg)
	experiments.SetParallelism(prev)
	if err != nil {
		return fmt.Errorf("raftbench: serial rerun: %w", err)
	}
	if serial.Digest() != res.Digest() {
		return fmt.Errorf("raftbench: digest %016x (parallel) != %016x (serial) — replication sweep is nondeterministic",
			res.Digest(), serial.Digest())
	}

	rep := raftBenchReport{
		Schema:          "delibabench/raft-v1",
		GoVersion:       runtime.Version(),
		HostCPUs:        runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Stack:           "deliba-k-hw",
		WallMs:          float64(wall.Microseconds()) / 1e3,
		Digest:          fmt.Sprintf("%016x", res.Digest()),
		DigestMatches:   true,
		AvailDelta:      map[string]float64{},
		TargetScenarios: []string{"osd-crash", "partition"},
		TargetMet:       true,
	}
	for _, c := range res.Cells {
		rep.Cells = append(rep.Cells, raftCellJSON{
			Repl:         c.Repl.String(),
			Scenario:     c.Scenario,
			Ops:          c.Ops,
			Errors:       c.Errors,
			AvailPct:     c.TimeAvail * 100,
			OpAvailPct:   c.OpAvail * 100,
			Stalls:       c.Stalls,
			StallTotalUs: float64(c.StallTotal) / 1e3,
			StallMaxUs:   float64(c.StallMax) / 1e3,
			MeanUs:       float64(c.Mean) / 1e3,
			P99Us:        float64(c.P99) / 1e3,
			P999Us:       float64(c.P999) / 1e3,
			Elections:    c.Raft.Elections,
			Redirects:    c.Raft.Redirects,
			Commits:      c.Raft.Commits,
		})
	}
	for _, c := range res.Cells {
		if c.Repl != core.ReplRaft {
			continue
		}
		if pc, ok := res.Cell(core.ReplPrimary, c.Scenario); ok {
			rep.AvailDelta[c.Scenario] = c.TimeAvail - pc.TimeAvail
		}
	}
	for _, scenario := range rep.TargetScenarios {
		if rep.AvailDelta[scenario] <= 0 {
			rep.TargetMet = false
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	printTables(res.Table())
	fmt.Printf("raftbench: wrote %s (partition avail delta %+.4f, osd-crash %+.4f, digest %s)\n",
		path, rep.AvailDelta["partition"], rep.AvailDelta["osd-crash"], rep.Digest)
	if !rep.TargetMet {
		return fmt.Errorf("raftbench: raft availability not strictly above primary-copy on every target scenario — see %s", path)
	}
	return nil
}
