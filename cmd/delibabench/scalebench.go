package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/rados"
	"repro/internal/sim"
)

// scaleBenchReport is the -scalebench artifact: the city-scale scenario run
// at increasing shard counts, with digest equality asserted and wall-clock,
// per-shard utilization and recovery numbers recorded. The parallel speedup
// is reported, not asserted: on a single-core host every shard count
// legitimately lands near 1.0x (same rule the selftest applies to the cell
// runner), while the digests must match everywhere.
type scaleBenchReport struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	HostCPUs   int     `json:"host_cpus"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	OSDs       int     `json:"osds"`
	Racks      int     `json:"racks"`
	Clients    int     `json:"clients"`
	Volumes    int     `json:"volumes"`
	TotalOps   uint64  `json:"total_ops"`
	Digest     string  `json:"digest"`
	SpeedupMax float64 `json:"speedup_at_max_shards"`
	Note       string  `json:"note,omitempty"`

	Runs     []scaleRunReport     `json:"runs"`
	Recovery *scaleRecoveryReport `json:"recovery,omitempty"`
}

// scaleRunReport is one healthy run at a fixed shard count.
type scaleRunReport struct {
	Shards   int             `json:"shards"`
	WallMs   float64         `json:"wall_ms"`
	Digest   string          `json:"digest"`
	KIOPSSim float64         `json:"kiops_simulated"`
	Windows  uint64          `json:"barrier_windows"`
	Messages uint64          `json:"cross_shard_msgs"`
	PerShard []shardUtilJSON `json:"per_shard"`
}

type shardUtilJSON struct {
	Shard   int     `json:"shard"`
	Domains int     `json:"domains"`
	Events  uint64  `json:"events"`
	BusyMs  float64 `json:"busy_ms"`
}

type scaleRecoveryReport struct {
	FailOSD      int     `json:"fail_osd"`
	DegradedPGs  int     `json:"degraded_pgs"`
	RecoveredPGs int     `json:"recovered_pgs"`
	RecoveryMs   float64 `json:"recovery_ms"`
	Redirects    uint64  `json:"redirects"`
}

func shardUtil(res *rados.ScaleResult) []shardUtilJSON {
	out := make([]shardUtilJSON, 0, len(res.PerShard))
	for _, st := range res.PerShard {
		out = append(out, shardUtilJSON{
			Shard:   st.Shard,
			Domains: st.Domains,
			Events:  st.Events,
			BusyMs:  float64(st.Busy.Microseconds()) / 1e3,
		})
	}
	return out
}

// scaleRuns is the -json report's scale section: the quick 256-OSD scenario
// at 1 and 8 shards, digests asserted equal.
func scaleRuns(cfg experiments.Config) ([]scaleRunReport, error) {
	var out []scaleRunReport
	var ref uint64
	for _, n := range []int{1, 8} {
		prev := experiments.SetShards(n)
		sc := experiments.ScaleScenario(cfg, 256)
		experiments.SetShards(prev)
		cl, err := rados.NewScaleCluster(sc)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := cl.Run()
		wall := time.Since(start)
		d := res.Digest()
		if len(out) == 0 {
			ref = d
		} else if d != ref {
			return nil, fmt.Errorf("scale digest %016x at %d shards != %016x at 1", d, n, ref)
		}
		out = append(out, scaleRunReport{
			Shards:   n,
			WallMs:   float64(wall.Microseconds()) / 1e3,
			Digest:   fmt.Sprintf("%016x", d),
			KIOPSSim: res.KIOPS,
			Windows:  res.Windows,
			Messages: res.Messages,
			PerShard: shardUtil(res),
		})
	}
	return out, nil
}

// runScaleBench measures the city-scale scenario (5,000 OSDs / 100k volumes;
// -quick shrinks it to 256 OSDs for smoke runs) at 1, 2, 4 and 8 shards.
func runScaleBench(path string, quick bool) error {
	cfg := experiments.Full()
	osds := 5000
	if quick {
		cfg = experiments.Quick()
		osds = 256
	}

	rep := scaleBenchReport{
		Schema:     "delibabench/scale-v1",
		GoVersion:  runtime.Version(),
		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if rep.HostCPUs == 1 {
		rep.Note = "single-core host: parallel speedup cannot materialize here; digest equality is the asserted property"
	}

	var refDigest uint64
	var wallFirst, wallLast time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		prev := experiments.SetShards(n)
		sc := experiments.ScaleScenario(cfg, osds)
		experiments.SetShards(prev)
		cl, err := rados.NewScaleCluster(sc)
		if err != nil {
			return err
		}
		start := time.Now()
		res := cl.Run()
		wall := time.Since(start)
		d := res.Digest()
		if len(rep.Runs) == 0 {
			refDigest = d
			wallFirst = wall
			rep.OSDs = res.OSDs
			rep.Racks = res.Racks
			rep.Clients = res.Clients
			rep.Volumes = res.Volumes
			rep.TotalOps = res.TotalOps
			rep.Digest = fmt.Sprintf("%016x", d)
		} else if d != refDigest {
			return fmt.Errorf("scalebench: digest %016x at %d shards != %016x at 1 — sharded engine is nondeterministic", d, n, refDigest)
		}
		wallLast = wall
		rep.Runs = append(rep.Runs, scaleRunReport{
			Shards:   n,
			WallMs:   float64(wall.Microseconds()) / 1e3,
			Digest:   fmt.Sprintf("%016x", d),
			KIOPSSim: res.KIOPS,
			Windows:  res.Windows,
			Messages: res.Messages,
			PerShard: shardUtil(res),
		})
		fmt.Printf("scalebench: %d OSDs, %d shards: %.1f ms wall, digest %016x, %d windows, %d cross-shard msgs\n",
			res.OSDs, n, float64(wall.Microseconds())/1e3, d, res.Windows, res.Messages)
	}
	rep.SpeedupMax = float64(wallFirst) / float64(wallLast)

	// One failure/recovery run of the same topology at the max shard count.
	prev := experiments.SetShards(8)
	fsc := experiments.ScaleScenario(cfg, osds)
	experiments.SetShards(prev)
	fsc.FailOSD = rep.OSDs / 2
	fsc.FailAfter = 2 * sim.Millisecond
	fcl, err := rados.NewScaleCluster(fsc)
	if err != nil {
		return err
	}
	fres := fcl.Run()
	rep.Recovery = &scaleRecoveryReport{
		FailOSD:      fsc.FailOSD,
		DegradedPGs:  fres.DegradedPGs,
		RecoveredPGs: fres.RecoveredPGs,
		RecoveryMs:   fres.RecoveryTime.Microseconds() / 1e3,
		Redirects:    fres.Redirects,
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("scalebench: wrote %s (%d runs, speedup %.2fx at 8 shards, host_cpus=%d)\n",
		path, len(rep.Runs), rep.SpeedupMax, rep.HostCPUs)
	return nil
}
