package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

// This file backs `delibabench -trace <file>`: it runs the traced slice of
// the evaluation grid (per-I/O span trees with deterministic sampling) and
// writes one Perfetto-loadable trace_event file, plus the `trace` section
// of the -json report.

// traceCellReport summarises one traced cell for the JSON report: sampling
// counts and the duration-weighted critical-path attribution over the
// retained tail exemplars.
type traceCellReport struct {
	Cell      string            `json:"cell"`
	Ops       uint64            `json:"ops"`
	Sampled   int               `json:"sampled"`
	Spans     int               `json:"spans"`
	Exemplars int               `json:"exemplars"`
	CritPath  []critShareReport `json:"critical_path"`
}

type critShareReport struct {
	Name  string  `json:"name"`
	Share float64 `json:"share"`
}

// traceCellReports runs the quick trace sweep and folds each cell into its
// report row.
func traceCellReports(cfg experiments.Config) ([]traceCellReport, error) {
	res, err := experiments.TraceSweep(cfg, experiments.DefaultTraceSample)
	if err != nil {
		return nil, err
	}
	var out []traceCellReport
	for _, c := range res.Cells {
		row := traceCellReport{
			Cell:      c.Cell,
			Ops:       c.Ops,
			Sampled:   c.Sampled,
			Spans:     len(c.Spans),
			Exemplars: len(c.Exemplars),
		}
		for _, ps := range c.CritPath {
			row.CritPath = append(row.CritPath, critShareReport{Name: ps.Name, Share: ps.Share})
		}
		out = append(out, row)
	}
	return out, nil
}

// runTrace executes the trace sweep and writes the Perfetto trace_event
// file to path, printing a per-cell summary with the top critical-path
// contributors.
func runTrace(path string, sample int, quick bool) error {
	cfg := experiments.Full()
	if quick {
		cfg = experiments.Quick()
	}
	res, err := experiments.TraceSweep(cfg, sample)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	var spans int
	for _, c := range res.Cells {
		spans += len(c.Spans)
	}
	fmt.Printf("delibabench: wrote %s (%d cells, %d spans, digest %016x)\n",
		path, len(res.Cells), spans, res.Digest())
	for _, c := range res.Cells {
		fmt.Printf("  %-42s ops %5d  sampled %4d  exemplars %d  critical path: %s\n",
			c.Cell, c.Ops, c.Sampled, len(c.Exemplars), critPathLine(c.CritPath, 3))
	}
	fmt.Println("load the file in ui.perfetto.dev or inspect it with `dfxtool trace summary`")
	return nil
}

// critPathLine renders the top-n critical-path shares as one line.
func critPathLine(ps []trace.PathShare, n int) string {
	s := ""
	for i, p := range ps {
		if i == n {
			break
		}
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %.0f%%", p.Name, p.Share*100)
	}
	if s == "" {
		s = "(empty)"
	}
	return s
}
