package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/experiments"
	"repro/internal/gf256"
)

// benchReport is the machine-readable artifact -json emits: quick-scale
// digests and serial-vs-parallel wall-clock for representative experiment
// families, plus erasure-kernel micro-benchmarks. CI archives it so
// performance PRs carry evidence alongside the code.
type benchReport struct {
	Schema      string         `json:"schema"`
	GoVersion   string         `json:"go_version"`
	HostCPUs    int            `json:"host_cpus"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Parallelism int            `json:"parallelism"`
	Families    []familyReport `json:"families"`
	Stacks      []stackReport  `json:"stacks"`
	Kernels     []kernelReport `json:"kernels"`
	// Scale is the quick city-scale scenario at 1 and 8 engine shards, with
	// per-shard utilization — digest equality across the two is asserted.
	Scale []scaleRunReport `json:"scale"`
	// Trace is the quick trace-sweep summary: per-cell sampling counts and
	// duration-weighted critical-path attribution (the -trace artifact in
	// digest form).
	Trace []traceCellReport `json:"trace"`
	// Tenant is the quick multi-tenant QoS grid: victim p50/p99/p999 per
	// (scheduler, scenario) cell plus Jain's fairness over contention-window
	// service shares.
	Tenant []tenantReport `json:"tenant"`
}

type familyReport struct {
	Name          string  `json:"name"`
	Digest        string  `json:"digest"`
	SerialMs      float64 `json:"serial_ms"`
	ParallelMs    float64 `json:"parallel_ms"`
	Speedup       float64 `json:"speedup"`
	DigestMatches bool    `json:"digest_matches"`
	// Stages is the family's representative-cell stage-latency breakdown
	// (p50/p99/p999/max per pipeline stage); Resilience its client-side
	// fault-handling counters. Families without an I/O path probe empty.
	Stages     []experiments.StageSummary `json:"stages,omitempty"`
	Resilience resilienceReport           `json:"resilience"`
}

// resilienceReport mirrors metrics.Resilience with stable JSON names. The
// stall fields are the unavailability-window accounting: how many windows
// opened where writes could not commit, their total and longest extent.
type resilienceReport struct {
	Retries          uint64  `json:"retries"`
	Failovers        uint64  `json:"failovers"`
	DegradedReads    uint64  `json:"degraded_reads"`
	DeadlineExceeded uint64  `json:"deadline_exceeded"`
	WriteStalls      uint64  `json:"write_stalls"`
	StallTotalUs     float64 `json:"stall_total_us"`
	StallMaxUs       float64 `json:"stall_max_us"`
}

// stackReport carries one named composition's stage-latency profile from
// the short -stack workload: every layer boundary the pipeline spans.
type stackReport struct {
	Name   string        `json:"name"`
	MBps   float64       `json:"mb_per_s"`
	KIOPS  float64       `json:"kiops"`
	Stages []stageReport `json:"stages"`
}

type stageReport struct {
	Stage  string  `json:"stage"`
	Ops    int     `json:"ops"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// stackReports profiles each of the paper's five stacks through the layer
// pipeline with profiling enabled.
func stackReports() ([]stackReport, error) {
	var out []stackReport
	for _, spec := range core.NamedSpecs() {
		res, prof, err := profileStack(spec)
		if err != nil {
			return nil, fmt.Errorf("stack %s: %w", spec.Name, err)
		}
		sr := stackReport{Name: spec.Name, MBps: res.MBps(), KIOPS: res.KIOPS()}
		for _, stage := range prof.Stages() {
			h := prof.Stage(stage)
			sr.Stages = append(sr.Stages, stageReport{
				Stage:  stage,
				Ops:    int(h.Count()),
				MeanUs: float64(h.Mean()) / 1e3,
				P50Us:  float64(h.Median()) / 1e3,
				P99Us:  float64(h.Percentile(99)) / 1e3,
				P999Us: float64(h.Percentile(99.9)) / 1e3,
				MaxUs:  float64(h.Max()) / 1e3,
			})
		}
		out = append(out, sr)
	}
	return out, nil
}

type kernelReport struct {
	Name    string  `json:"name"`
	Bytes   int     `json:"payload_bytes"`
	Iters   int     `json:"iters"`
	MBPerS  float64 `json:"mb_per_s"`
	NsPerOp float64 `json:"ns_per_op"`
}

// reportFamilies is the JSON report's coverage: every runner-converted
// experiment family with a digest.
func reportFamilies() []family {
	fams := selftestFamilies()
	fams = append(fams,
		family{"fig8", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.Fig8and9(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		family{"tab2", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.Table2(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		family{"buckets", func(experiments.Config) (uint64, error) {
			rows, err := experiments.BucketQuality()
			if err != nil {
				return 0, err
			}
			return experiments.BucketQualityDigest(rows), nil
		}},
		family{"recovery", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.Recovery(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		family{"oltp", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.OLTP(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		family{"cache", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.CacheSweep(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		family{"raft", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.RaftSweep(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		family{"tenant", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.TenantSweep(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
	)
	return fams
}

// tenantReport is the -json report's multi-tenant section: per-cell victim
// tail latency, per-tenant p50/p99/p999 exemplar rows (the hog and the
// hottest victim), and Jain's fairness over contention-window shares.
type tenantReport struct {
	QoS         string  `json:"qos"`
	Scenario    string  `json:"scenario"`
	Tenants     int     `json:"tenants"`
	VictimP50Us float64 `json:"victim_p50_us"`
	VictimP99Us float64 `json:"victim_p99_us"`
	P999Us      float64 `json:"victim_p999_us"`
	Fairness    float64 `json:"fairness"`
	Throttled   uint64  `json:"sched_throttled"`
	Blowup      float64 `json:"victim_p99_blowup"`
}

// tenantReports runs the quick tenant sweep for the -json report.
func tenantReports(cfg experiments.Config) ([]tenantReport, error) {
	res, err := experiments.TenantSweep(cfg)
	if err != nil {
		return nil, err
	}
	baseline, _ := res.Cell(core.QoSNone, "isolated")
	var out []tenantReport
	for _, c := range res.Cells {
		tr := tenantReport{
			QoS:         c.QoS.String(),
			Scenario:    c.Scenario,
			Tenants:     c.Tenants,
			VictimP50Us: float64(c.VictimP50) / 1e3,
			VictimP99Us: float64(c.VictimP99) / 1e3,
			P999Us:      float64(c.VictimP999) / 1e3,
			Fairness:    c.Fairness,
			Throttled:   c.Stats.Throttled,
		}
		if baseline.VictimP99 > 0 {
			tr.Blowup = float64(c.VictimP99) / float64(baseline.VictimP99)
		}
		out = append(out, tr)
	}
	return out, nil
}

// writeJSONReport runs the quick-scale report grid and writes it to path.
// It always uses the Quick config: the report is determinism and speedup
// evidence, not a paper-scale result set.
func writeJSONReport(path string) error {
	cfg := experiments.Quick()
	rep := benchReport{
		Schema:      "delibabench/bench-v1",
		GoVersion:   runtime.Version(),
		HostCPUs:    runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: experiments.Parallelism(),
	}
	for _, fam := range reportFamilies() {
		serial, err := timedRun(1, cfg, fam)
		if err != nil {
			return fmt.Errorf("json report: %s serial: %w", fam.name, err)
		}
		parallel, err := timedRun(0, cfg, fam)
		if err != nil {
			return fmt.Errorf("json report: %s parallel: %w", fam.name, err)
		}
		fr := familyReport{
			Name:          fam.name,
			Digest:        fmt.Sprintf("%016x", serial.digest),
			SerialMs:      float64(serial.elapsed.Microseconds()) / 1e3,
			ParallelMs:    float64(parallel.elapsed.Microseconds()) / 1e3,
			Speedup:       float64(serial.elapsed) / float64(parallel.elapsed),
			DigestMatches: serial.digest == parallel.digest,
		}
		probe, err := experiments.FamilyProbe(cfg, fam.name)
		if err != nil {
			return fmt.Errorf("json report: %s probe: %w", fam.name, err)
		}
		fr.Stages = probe.Stages
		fr.Resilience = resilienceReport{
			Retries:          probe.Resilience.Retries,
			Failovers:        probe.Resilience.Failovers,
			DegradedReads:    probe.Resilience.DegradedReads,
			DeadlineExceeded: probe.Resilience.DeadlineExceeded,
			WriteStalls:      probe.Resilience.WriteStalls,
			StallTotalUs:     float64(probe.Resilience.StallTotal) / 1e3,
			StallMaxUs:       float64(probe.Resilience.StallMax) / 1e3,
		}
		rep.Families = append(rep.Families, fr)
		if !fr.DigestMatches {
			return fmt.Errorf("json report: %s serial digest %016x != parallel %016x",
				fam.name, serial.digest, parallel.digest)
		}
	}
	stacks, err := stackReports()
	if err != nil {
		return fmt.Errorf("json report: %w", err)
	}
	rep.Stacks = stacks
	scale, err := scaleRuns(cfg)
	if err != nil {
		return fmt.Errorf("json report: %w", err)
	}
	rep.Scale = scale
	traceCells, err := traceCellReports(cfg)
	if err != nil {
		return fmt.Errorf("json report: %w", err)
	}
	rep.Trace = traceCells
	tenants, err := tenantReports(cfg)
	if err != nil {
		return fmt.Errorf("json report: %w", err)
	}
	rep.Tenant = tenants
	rep.Kernels = append(rep.Kernels, benchEncode(), benchReconstruct(), benchMulAdd())
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("delibabench: wrote %s (%d families, %d stack profiles, %d kernel benches)\n",
		path, len(rep.Families), len(rep.Stacks), len(rep.Kernels))
	return nil
}

// benchShards builds a deterministic k+m shard set for the kernel benches.
func benchShards(k, m, size int) [][]byte {
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, size)
		for j := range shards[i] {
			shards[i][j] = byte(i*31 + j)
		}
	}
	return shards
}

// benchEncode times the fused-kernel RS(8,4) encode over 128 kB shards —
// the acceptance benchmark's shape.
func benchEncode() kernelReport {
	const k, m, size, iters = 8, 4, 128 * 1024, 400
	c, err := erasure.New(k, m, erasure.VandermondeRS)
	if err != nil {
		panic(err)
	}
	shards := benchShards(k, m, size)
	for i := 0; i < 8; i++ { // warm-up
		if err := c.Encode(shards); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := c.Encode(shards); err != nil {
			panic(err)
		}
	}
	el := time.Since(start)
	return kernelReport{
		Name:    "erasure.Encode RS(8,4) 128kB",
		Bytes:   k * size,
		Iters:   iters,
		MBPerS:  float64(k*size*iters) / el.Seconds() / 1e6,
		NsPerOp: float64(el.Nanoseconds()) / iters,
	}
}

// benchReconstruct times a two-shard rebuild of the same geometry.
func benchReconstruct() kernelReport {
	const k, m, size, iters = 8, 4, 128 * 1024, 200
	c, err := erasure.New(k, m, erasure.VandermondeRS)
	if err != nil {
		panic(err)
	}
	shards := benchShards(k, m, size)
	if err := c.Encode(shards); err != nil {
		panic(err)
	}
	work := make([][]byte, k+m)
	start := time.Now()
	for i := 0; i < iters; i++ {
		copy(work, shards)
		work[1], work[6] = nil, nil
		if err := c.Reconstruct(work); err != nil {
			panic(err)
		}
	}
	el := time.Since(start)
	return kernelReport{
		Name:    "erasure.Reconstruct RS(8,4) 2 lost 128kB",
		Bytes:   k * size,
		Iters:   iters,
		MBPerS:  float64(k*size*iters) / el.Seconds() / 1e6,
		NsPerOp: float64(el.Nanoseconds()) / iters,
	}
}

// benchMulAdd times the raw fused GF(256) dot-product kernel.
func benchMulAdd() kernelReport {
	const k, size, iters = 8, 16 * 1024, 2000
	shards := benchShards(k, 0, size)
	coeffs := make([]byte, k)
	for i := range coeffs {
		coeffs[i] = byte(3 + 2*i)
	}
	dst := make([]byte, size)
	start := time.Now()
	for i := 0; i < iters; i++ {
		gf256.MulAddSlices(coeffs, shards, dst)
	}
	el := time.Since(start)
	return kernelReport{
		Name:    "gf256.MulAddSlices k=8 16kB",
		Bytes:   k * size,
		Iters:   iters,
		MBPerS:  float64(k*size*iters) / el.Seconds() / 1e6,
		NsPerOp: float64(el.Nanoseconds()) / iters,
	}
}
