package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fio"
)

// stackJob is the short mixed workload -stack runs: enough random 4 kB
// operations to populate every stage histogram without taking paper-scale
// time.
func stackJob(spec core.StackSpec) fio.JobSpec {
	return fio.JobSpec{
		Name:       spec.Name,
		ReadPct:    50,
		Pattern:    core.Rand,
		BlockSize:  4096,
		QueueDepth: 8,
		Jobs:       2,
		Ops:        400,
		RampOps:    40,
		Seed:       1,
	}
}

// profileStack builds the spec'd stack on a fresh profiled testbed, runs
// the short workload, and returns the fio result plus the stage profile.
func profileStack(spec core.StackSpec) (*fio.Result, *core.StageProfile, error) {
	cfg := core.DefaultTestbedConfig()
	cfg.Jitter = false
	if spec.Replication == core.ReplRaft {
		// The raft router fails fast with ErrNoLeader while an election is
		// still resolving; the client retry layer is part of that protocol's
		// contract, so arm it for the profile.
		cfg.Resilience = core.DefaultResilienceConfig()
		cfg.Resilience.Seed = stackJob(spec).Seed
	}
	tb, err := core.NewTestbed(cfg)
	if err != nil {
		return nil, nil, err
	}
	prof := tb.EnableProfiling()
	stack, err := tb.BuildStack(spec)
	if err != nil {
		return nil, nil, err
	}
	res, err := fio.Run(tb.Eng, stack, stackJob(spec))
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// runStack is the -stack mode: assemble one composition from its spec
// string, drive the short workload through it, and print the throughput
// summary plus the per-stage latency breakdown recorded at every layer
// boundary.
func runStack(specStr string) error {
	spec, err := core.ParseStackSpec(specStr)
	if err != nil {
		return err
	}
	fmt.Printf("stack %s: %v / %v / %v / %v / %v (ec=%v)\n", spec.Name,
		spec.HostAPI, spec.Block, spec.Transport, spec.Placement, spec.Fanout, spec.EC)
	res, prof, err := profileStack(spec)
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Println(prof.Table())
	return nil
}
