package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// cacheBenchReport is the -cachebench artifact: the LSVD write-back cache
// tier's hit-rate sweep and crash-recovery scenarios, with the headline
// p50 speedup of the 90%-hot workload over the direct path asserted
// against the 10x acceptance target, and digest equality between serial
// and parallel cell execution asserted like every other family.
type cacheBenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	HostCPUs   int    `json:"host_cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Base       string  `json:"base_stack"`
	CachedSpec string  `json:"cached_stack"`
	WallMs     float64 `json:"wall_ms"`

	Digest        string `json:"digest"`
	DigestMatches bool   `json:"digest_matches_serial"`

	// Speedups is p50(direct)/p50(largest cache) per workload; Target* is
	// the acceptance evidence on the cache-friendly 90%-hot read stream.
	Speedups       map[string]float64 `json:"p50_speedup_by_workload"`
	TargetWorkload string             `json:"target_workload"`
	TargetSpeedup  float64            `json:"target_p50_speedup"`
	TargetMet      bool               `json:"target_met_10x"`

	Points   []cachePointJSON    `json:"points"`
	Recovery []cacheRecoveryJSON `json:"recovery"`
	// ZeroAckedLoss is true when every crash-recovery seed replayed its
	// log without losing a single acknowledged byte.
	ZeroAckedLoss bool `json:"zero_acked_loss"`
}

type cachePointJSON struct {
	Workload string  `json:"workload"`
	CacheMB  int     `json:"cache_mb"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	HitRatio float64 `json:"hit_ratio"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Flushes  uint64  `json:"flushes"`
	Backlog  int     `json:"flush_backlog"`
}

type cacheRecoveryJSON struct {
	Seed       uint64  `json:"seed"`
	Writes     int     `json:"writes"`
	Replays    uint64  `json:"replayed_ops"`
	Recoveries uint64  `json:"recoveries"`
	LostAcked  int64   `json:"lost_acked_bytes"`
	RecoveryUs float64 `json:"recovery_us"`
}

// runCacheBench runs the cache tier evaluation twice — at the configured
// parallelism and serially — writes the JSON artifact, and fails if the
// digests diverge or the 10x headline target is missed.
func runCacheBench(path string, quick bool) error {
	cfg := experiments.Full()
	if quick {
		cfg = experiments.Quick()
	}
	start := time.Now()
	res, err := experiments.CacheSweep(cfg)
	if err != nil {
		return fmt.Errorf("cachebench: %w", err)
	}
	wall := time.Since(start)
	prev := experiments.SetParallelism(1)
	serial, err := experiments.CacheSweep(cfg)
	experiments.SetParallelism(prev)
	if err != nil {
		return fmt.Errorf("cachebench: serial rerun: %w", err)
	}
	if serial.Digest() != res.Digest() {
		return fmt.Errorf("cachebench: digest %016x (parallel) != %016x (serial) — cache sweep is nondeterministic",
			res.Digest(), serial.Digest())
	}

	const targetWL = "hot90-read"
	rep := cacheBenchReport{
		Schema:         "delibabench/cache-v1",
		GoVersion:      runtime.Version(),
		HostCPUs:       runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Base:           res.Base,
		CachedSpec:     res.Base + "+cache-lsvd",
		WallMs:         float64(wall.Microseconds()) / 1e3,
		Digest:         fmt.Sprintf("%016x", res.Digest()),
		DigestMatches:  true,
		Speedups:       map[string]float64{},
		TargetWorkload: targetWL,
		ZeroAckedLoss:  true,
	}
	for _, p := range res.Points {
		rep.Points = append(rep.Points, cachePointJSON{
			Workload: p.Workload,
			CacheMB:  p.CacheMB,
			P50Us:    float64(p.P50) / 1e3,
			P99Us:    float64(p.P99) / 1e3,
			HitRatio: p.HitRatio,
			Hits:     p.Hits,
			Misses:   p.Misses,
			Flushes:  p.Flushes,
			Backlog:  p.Backlog,
		})
		if p.CacheMB == 0 {
			rep.Speedups[p.Workload] = res.HitSpeedup(p.Workload)
		}
	}
	rep.TargetSpeedup = res.HitSpeedup(targetWL)
	rep.TargetMet = rep.TargetSpeedup >= 10
	for _, rec := range res.Recovery {
		rep.Recovery = append(rep.Recovery, cacheRecoveryJSON{
			Seed:       rec.Seed,
			Writes:     rec.Ops,
			Replays:    rec.Replays,
			Recoveries: rec.Recoveries,
			LostAcked:  rec.LostAcked,
			RecoveryUs: float64(rec.RecoveryTime) / 1e3,
		})
		if rec.LostAcked != 0 {
			rep.ZeroAckedLoss = false
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	printTables(res.Table(), res.RecoveryTable())
	fmt.Printf("cachebench: wrote %s (%s p50 speedup %.1fx, zero_acked_loss=%v, digest %s)\n",
		path, targetWL, rep.TargetSpeedup, rep.ZeroAckedLoss, rep.Digest)
	if !rep.TargetMet {
		return fmt.Errorf("cachebench: %s p50 speedup %.1fx below the 10x target", targetWL, rep.TargetSpeedup)
	}
	if !rep.ZeroAckedLoss {
		return fmt.Errorf("cachebench: acknowledged writes lost across a crash — see %s", path)
	}
	return nil
}
