package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// tenantBenchReport is the -tenantbench artifact: the multi-tenant QoS grid
// (scheduler axis × noisy-neighbor scenario on the classic testbed, plus the
// tenant-population fleet axis on the sharded city-scale model) with the
// tentpole acceptance evidence — under a noisy neighbor the dmclock
// scheduler holds the victims' p99 within IsolationTarget× of the hog-free
// baseline while the unscheduled bypass blows past BlowupFloor×, and Jain's
// fairness over contention-window service shares is strictly higher with
// dmclock than without QoS — plus serial-vs-parallel digest equality like
// every other family.
type tenantBenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	HostCPUs   int    `json:"host_cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Stack   string  `json:"base_stack"`
	Tenants int     `json:"tenants"`
	WallMs  float64 `json:"wall_ms"`

	Digest        string `json:"digest"`
	DigestMatches bool   `json:"digest_matches_serial"`

	// VictimP99Blowup is each scheduler's noisy-scenario victim p99 as a
	// multiple of the hog-free qos-none baseline.
	VictimP99Blowup map[string]float64 `json:"victim_p99_blowup_by_qos"`
	// IsolationTarget / BlowupFloor are the acceptance thresholds: dmclock
	// must stay within the former, the bypass must exceed the latter.
	IsolationTarget float64 `json:"isolation_target_dmclock"`
	BlowupFloor     float64 `json:"blowup_floor_none"`
	FairnessNone    float64 `json:"fairness_noisy_none"`
	FairnessDMClock float64 `json:"fairness_noisy_dmclock"`
	TargetMet       bool    `json:"target_met_isolation"`

	Cells []tenantCellJSON      `json:"cells"`
	Fleet []tenantFleetCellJSON `json:"fleet"`
}

type tenantCellJSON struct {
	QoS          string  `json:"qos"`
	Scenario     string  `json:"scenario"`
	Tenants      int     `json:"tenants"`
	Ops          int     `json:"ops"`
	VictimMeanUs float64 `json:"victim_mean_us"`
	VictimP50Us  float64 `json:"victim_p50_us"`
	VictimP99Us  float64 `json:"victim_p99_us"`
	VictimP999Us float64 `json:"victim_p999_us"`
	HogOps       uint64  `json:"hog_ops"`
	HogP99Us     float64 `json:"hog_p99_us"`
	Fairness     float64 `json:"fairness"`
	Dispatched   uint64  `json:"sched_dispatched"`
	Throttled    uint64  `json:"sched_throttled"`
	ResPhase     uint64  `json:"sched_res_phase"`
	WeightPhase  uint64  `json:"sched_weight_phase"`
}

type tenantFleetCellJSON struct {
	Tenants  int     `json:"tenants"`
	Active   int     `json:"active"`
	Shards   int     `json:"shards"`
	TotalOps uint64  `json:"total_ops"`
	KIOPS    float64 `json:"kiops"`
	MeanUs   float64 `json:"mean_us"`
	P99Us    float64 `json:"p99_us"`
	HotShare float64 `json:"hot_share"`
	Fairness float64 `json:"fairness"`
}

// runTenantBench runs the multi-tenant QoS sweep twice — at the configured
// parallelism and serially — writes the JSON artifact, and fails if the
// digests diverge or the isolation acceptance bar is missed.
func runTenantBench(path string, quick bool) error {
	cfg := experiments.Full()
	isolationTarget, blowupFloor := 2.0, 5.0
	if quick {
		cfg = experiments.Quick()
		// Quick-scale runs keep the shape checks (hog bites, QoS shields)
		// but not the full-population ratios.
		isolationTarget, blowupFloor = 4.0, 1.0
	}
	start := time.Now()
	res, err := experiments.TenantSweep(cfg)
	if err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	wall := time.Since(start)
	prev := experiments.SetParallelism(1)
	serial, err := experiments.TenantSweep(cfg)
	experiments.SetParallelism(prev)
	if err != nil {
		return fmt.Errorf("tenantbench: serial rerun: %w", err)
	}
	if serial.Digest() != res.Digest() {
		return fmt.Errorf("tenantbench: digest %016x (parallel) != %016x (serial) — tenant sweep is nondeterministic",
			res.Digest(), serial.Digest())
	}

	baseline, ok := res.Cell(core.QoSNone, "isolated")
	if !ok || baseline.VictimP99 <= 0 {
		return fmt.Errorf("tenantbench: no usable qos-none/isolated baseline cell")
	}
	rep := tenantBenchReport{
		Schema:          "delibabench/tenant-v1",
		GoVersion:       runtime.Version(),
		HostCPUs:        runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Stack:           "deliba-k-hw",
		Tenants:         baseline.Tenants,
		WallMs:          float64(wall.Microseconds()) / 1e3,
		Digest:          fmt.Sprintf("%016x", res.Digest()),
		DigestMatches:   true,
		VictimP99Blowup: map[string]float64{},
		IsolationTarget: isolationTarget,
		BlowupFloor:     blowupFloor,
	}
	for _, c := range res.Cells {
		rep.Cells = append(rep.Cells, tenantCellJSON{
			QoS:          c.QoS.String(),
			Scenario:     c.Scenario,
			Tenants:      c.Tenants,
			Ops:          c.Ops,
			VictimMeanUs: float64(c.VictimMean) / 1e3,
			VictimP50Us:  float64(c.VictimP50) / 1e3,
			VictimP99Us:  float64(c.VictimP99) / 1e3,
			VictimP999Us: float64(c.VictimP999) / 1e3,
			HogOps:       c.HogOps,
			HogP99Us:     float64(c.HogP99) / 1e3,
			Fairness:     c.Fairness,
			Dispatched:   c.Stats.Dispatched,
			Throttled:    c.Stats.Throttled,
			ResPhase:     c.Stats.ResPhase,
			WeightPhase:  c.Stats.WeightPhase,
		})
		if c.Scenario == "noisy" {
			rep.VictimP99Blowup[c.QoS.String()] = float64(c.VictimP99) / float64(baseline.VictimP99)
		}
	}
	for _, c := range res.Fleet {
		rep.Fleet = append(rep.Fleet, tenantFleetCellJSON{
			Tenants:  c.Tenants,
			Active:   c.Active,
			Shards:   c.Shards,
			TotalOps: c.TotalOps,
			KIOPS:    c.KIOPS,
			MeanUs:   float64(c.Mean) / 1e3,
			P99Us:    float64(c.P99) / 1e3,
			HotShare: c.HotShare,
			Fairness: c.Fairness,
		})
	}
	if none, ok := res.Cell(core.QoSNone, "noisy"); ok {
		rep.FairnessNone = none.Fairness
	}
	if dmc, ok := res.Cell(core.QoSDMClock, "noisy"); ok {
		rep.FairnessDMClock = dmc.Fairness
	}
	rep.TargetMet = rep.VictimP99Blowup["qos-dmclock"] > 0 &&
		rep.VictimP99Blowup["qos-dmclock"] <= isolationTarget &&
		rep.VictimP99Blowup["qos-none"] > blowupFloor &&
		rep.FairnessDMClock > rep.FairnessNone

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	printTables(res.Table(), res.FleetTable())
	fmt.Printf("tenantbench: wrote %s (victim p99 blowup: none %.2fx, tbucket %.2fx, dmclock %.2fx; fairness none %.4f -> dmclock %.4f; digest %s)\n",
		path, rep.VictimP99Blowup["qos-none"], rep.VictimP99Blowup["qos-tbucket"],
		rep.VictimP99Blowup["qos-dmclock"], rep.FairnessNone, rep.FairnessDMClock, rep.Digest)
	if !rep.TargetMet {
		return fmt.Errorf("tenantbench: isolation targets missed (dmclock %.2fx > %.1fx, or none %.2fx <= %.1fx, or fairness not improved) — see %s",
			rep.VictimP99Blowup["qos-dmclock"], isolationTarget,
			rep.VictimP99Blowup["qos-none"], blowupFloor, path)
	}
	return nil
}
