// Command delibabench regenerates every table and figure of the DeLiBA-K
// paper's evaluation from the simulation, printing them as plain-text
// tables. Select individual experiments with -only, or run everything.
//
// Usage:
//
//	delibabench [-quick] [-parallel n] [-only fig3,fig6,tab2,...]
//	delibabench -selftest [-iters n]
//	delibabench -json out.json
//	delibabench -stack deliba-k-hw
//	delibabench -stack iouring,dmq-bypass,qdma,hls-crush,card-rtl,ec
//	delibabench -quick -trace trace.json [-tracesample 8]
//
// Experiment ids: fig3 fig4 tab1 fig6 fig7 fig8 fig9 tab2 tab3 power
// realworld headline ablations dfx buckets recovery mtu faults scale cache
// raft tenant
//
// -parallel sets how many worker goroutines the experiment runner fans
// sweep cells out to (default: GOMAXPROCS). Results are bit-identical at
// any setting; only wall-clock changes.
//
// -shards sets the simulation engine's shard count: testbeds are built on a
// sharded engine group whose per-domain event loops run in parallel under
// conservative-lookahead synchronization. Results are bit-identical at any
// setting (the determinism property the sharded engine guarantees); the
// city-scale `scale` family gains wall-clock parallelism from it.
//
// -scalebench runs the city-scale 5,000-OSD / 100k-volume scenario at 1, 2,
// 4 and 8 shards, verifies the digests match, and writes wall-clock,
// speedup, recovery and per-shard utilization numbers to the given JSON
// path.
//
// -cachebench runs the LSVD write-back cache tier evaluation (hit-rate
// sweep plus crash-recovery scenarios), asserts the 10x p50 target on the
// 90%-hot workload and zero acknowledged-write loss, and writes the JSON
// artifact to the given path.
//
// -raftbench runs the replication head-to-head (primary-copy vs per-PG
// multi-Raft across the fault scenario axis), asserts that the Raft
// backend sustains strictly higher measured availability than primary-copy
// under both the silent OSD crash and the node partition, asserts
// serial-vs-parallel digest equality, and writes the JSON artifact to the
// given path.
//
// -tenantbench runs the multi-tenant QoS benchmark (the blk-mq scheduler
// axis under a noisy neighbor, plus the 10 → 10,000 tenant fleet axis on
// the sharded city-scale model), asserts that dmclock holds the victims'
// p99 within 2x of the hog-free baseline while the unscheduled bypass
// exceeds 5x and that dmclock's contention-window fairness beats the
// bypass's, asserts serial-vs-parallel digest equality, and writes the
// JSON artifact to the given path.
//
// -selftest repeatedly runs the quick Fig. 3 grid, timing each iteration
// and checking that every run produces a bit-identical result digest, then
// cross-checks serial against parallel execution of the Fig. 3 and Fig. 6
// grids. It is the wall-clock yardstick for hot-path work: the simulation
// must get faster without its output changing by a single bit.
//
// -json writes a machine-readable report (quick-scale digests, serial vs
// parallel wall-clock per experiment family, per-stack stage-latency
// profiles, and erasure-kernel micro-benchmarks) to the given path instead
// of printing tables.
//
// -trace runs the per-I/O span-tracing sweep (healthy Fig. 3 cells sampled
// every -tracesample'th op, fault cells traced exhaustively) and writes one
// Chrome/Perfetto-loadable trace_event JSON file with per-cell tail
// exemplars and critical-path attribution. The file is byte-identical at
// any -parallel/-shards setting. Inspect it with `dfxtool trace`.
//
// -stack assembles one composition from a declarative spec — a named
// generation or a comma-separated layer list (see core.ParseStackSpec) —
// runs a short mixed workload on it, and prints throughput plus the
// per-stage latency breakdown recorded at every layer boundary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale experiments")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	selftest := flag.Bool("selftest", false, "run the wall-clock/determinism self-test")
	iters := flag.Int("iters", 20, "self-test iterations")
	par := flag.Int("parallel", 0, "experiment runner workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "simulation engine shards (results identical at any setting)")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark report to this path")
	scaleBench := flag.String("scalebench", "", "run the city-scale sharding benchmark and write its JSON report to this path")
	cacheBench := flag.String("cachebench", "", "run the write-back cache tier benchmark and write its JSON report to this path")
	raftBench := flag.String("raftbench", "", "run the replication head-to-head benchmark and write its JSON report to this path")
	tenantBench := flag.String("tenantbench", "", "run the multi-tenant QoS benchmark and write its JSON report to this path")
	stackSpec := flag.String("stack", "", "build one stack composition (name or layer tokens) and profile it")
	tracePath := flag.String("trace", "", "run the per-I/O trace sweep and write a Perfetto trace_event file to this path")
	traceSample := flag.Int("tracesample", experiments.DefaultTraceSample, "trace every Nth op on healthy cells (fault cells always trace every op)")
	flag.Parse()

	experiments.SetParallelism(*par)
	experiments.SetShards(*shards)

	if *tracePath != "" {
		if err := runTrace(*tracePath, *traceSample, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}

	if *scaleBench != "" {
		if err := runScaleBench(*scaleBench, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}
	if *cacheBench != "" {
		if err := runCacheBench(*cacheBench, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}
	if *raftBench != "" {
		if err := runRaftBench(*raftBench, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}
	if *tenantBench != "" {
		if err := runTenantBench(*tenantBench, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}
	if *stackSpec != "" {
		if err := runStack(*stackSpec); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonPath != "" {
		if err := writeJSONReport(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}
	if *selftest {
		if err := runSelftest(*iters); err != nil {
			fmt.Fprintln(os.Stderr, "delibabench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Full()
	if *quick {
		cfg = experiments.Quick()
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if err := run(cfg, sel); err != nil {
		fmt.Fprintln(os.Stderr, "delibabench:", err)
		os.Exit(1)
	}
}

// runSelftest times iters runs of the quick Fig. 3 grid and verifies every
// run digests identically.
func runSelftest(iters int) error {
	if iters < 1 {
		iters = 1
	}
	cfg := experiments.Quick()
	var digest uint64
	var total, min time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		res, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		el := time.Since(start)
		total += el
		if min == 0 || el < min {
			min = el
		}
		d := res.Digest()
		if i == 0 {
			digest = d
		} else if d != digest {
			return fmt.Errorf("selftest: iteration %d digest %016x != %016x — simulation is nondeterministic", i, d, digest)
		}
	}
	fmt.Printf("selftest: %d x fig3(quick) deterministic, digest %016x\n", iters, digest)
	fmt.Printf("selftest: wall-clock mean %.1f ms/iter, best %.1f ms\n",
		float64(total.Microseconds())/float64(iters)/1e3,
		float64(min.Microseconds())/1e3)

	// Serial-vs-parallel cross-check: the same grids at 1 worker and at the
	// configured fan-out must digest identically. Digest equality is the
	// hard gate; the speedup is reported but not asserted (this binary may
	// run on a single-core host, where it is legitimately ~1.0x).
	for _, fam := range selftestFamilies() {
		serial, err := timedRun(1, cfg, fam)
		if err != nil {
			return err
		}
		parallel, err := timedRun(0, cfg, fam)
		if err != nil {
			return err
		}
		if serial.digest != parallel.digest {
			return fmt.Errorf("selftest: %s digest %016x (serial) != %016x (%d workers) — parallel runner is nondeterministic",
				fam.name, serial.digest, parallel.digest, experiments.Parallelism())
		}
		fmt.Printf("selftest: %s serial==parallel digest %016x; %0.1f ms -> %0.1f ms (%.2fx, %d workers)\n",
			fam.name, serial.digest,
			float64(serial.elapsed.Microseconds())/1e3,
			float64(parallel.elapsed.Microseconds())/1e3,
			float64(serial.elapsed)/float64(parallel.elapsed),
			experiments.Parallelism())
	}
	return nil
}

// family is one digestable experiment used by the selftest and the JSON
// report.
type family struct {
	name string
	run  func(cfg experiments.Config) (uint64, error)
}

func selftestFamilies() []family {
	return []family{
		{"fig3", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.Fig3(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		{"fig6", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.Fig6and7(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
		{"faults", func(cfg experiments.Config) (uint64, error) {
			res, err := experiments.FaultSweep(cfg)
			if err != nil {
				return 0, err
			}
			return res.Digest(), nil
		}},
	}
}

type timedResult struct {
	digest  uint64
	elapsed time.Duration
}

// timedRun measures one family at the given worker count (0 = the
// configured default), restoring the previous setting afterwards.
func timedRun(workers int, cfg experiments.Config, fam family) (timedResult, error) {
	if workers > 0 {
		prev := experiments.SetParallelism(workers)
		defer experiments.SetParallelism(prev)
	}
	start := time.Now()
	d, err := fam.run(cfg)
	if err != nil {
		return timedResult{}, err
	}
	return timedResult{digest: d, elapsed: time.Since(start)}, nil
}

func printTables(tabs ...*metrics.Table) {
	for _, t := range tabs {
		fmt.Println(t)
	}
}

func run(cfg experiments.Config, sel func(string) bool) error {
	if sel("fig3") {
		res, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		printTables(res.Tables()...)
	}
	if sel("fig4") {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		printTables(res.Tables()...)
	}
	if sel("tab1") {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		printTables(experiments.Table1Table(rows))
	}

	var replSweep *experiments.HWSweepResult
	if sel("fig6") || sel("fig7") || sel("headline") {
		var err error
		replSweep, err = experiments.Fig6and7(cfg)
		if err != nil {
			return err
		}
	}
	if sel("fig6") {
		printTables(replSweep.ThroughputTables()...)
	}
	if sel("fig7") {
		printTables(replSweep.IOPSTables()...)
	}
	if sel("fig8") || sel("fig9") {
		ecSweep, err := experiments.Fig8and9(cfg)
		if err != nil {
			return err
		}
		if sel("fig8") {
			printTables(ecSweep.ThroughputTables()...)
		}
		if sel("fig9") {
			printTables(ecSweep.IOPSTables()...)
		}
	}
	if sel("tab2") {
		res, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		printTables(res.Tables()...)
	}
	if sel("tab3") {
		tabs, err := experiments.Table3()
		if err != nil {
			return err
		}
		printTables(tabs...)
	}
	if sel("power") {
		p, err := experiments.Power()
		if err != nil {
			return err
		}
		printTables(p.Table())
	}
	if sel("realworld") {
		olap, err := experiments.OLAP(cfg)
		if err != nil {
			return err
		}
		oltp, err := experiments.OLTP(cfg)
		if err != nil {
			return err
		}
		printTables(olap.Table(), oltp.Table())
	}
	if sel("headline") && replSweep != nil {
		printTables(experiments.Headline(replSweep).Table())
	}
	if sel("ablations") {
		sq, err := experiments.AblationSQPoll(cfg)
		if err != nil {
			return err
		}
		byp, err := experiments.AblationSchedulerBypass(cfg)
		if err != nil {
			return err
		}
		inst, err := experiments.AblationInstances(cfg)
		if err != nil {
			return err
		}
		printTables(sq.Table(), byp.Table(), inst.Table())
	}
	if sel("dfx") {
		res, err := experiments.DFX()
		if err != nil {
			return err
		}
		printTables(res.Table())
	}
	if sel("buckets") {
		rows, err := experiments.BucketQuality()
		if err != nil {
			return err
		}
		printTables(experiments.BucketQualityTable(rows))
	}
	if sel("recovery") {
		res, err := experiments.Recovery(cfg)
		if err != nil {
			return err
		}
		printTables(res.Table())
	}
	if sel("mtu") {
		rows, err := experiments.MTU()
		if err != nil {
			return err
		}
		printTables(experiments.MTUTable(rows))
	}
	if sel("faults") {
		res, err := experiments.FaultSweep(cfg)
		if err != nil {
			return err
		}
		printTables(res.Table())
	}
	if sel("scale") {
		res, err := experiments.ScaleSweep(cfg)
		if err != nil {
			return err
		}
		printTables(res.Table())
	}
	if sel("cache") {
		res, err := experiments.CacheSweep(cfg)
		if err != nil {
			return err
		}
		printTables(res.Table(), res.AdmissionTable(), res.RecoveryTable())
	}
	if sel("raft") {
		res, err := experiments.RaftSweep(cfg)
		if err != nil {
			return err
		}
		printTables(res.Table())
	}
	if sel("tenant") {
		res, err := experiments.TenantSweep(cfg)
		if err != nil {
			return err
		}
		printTables(res.Table(), res.FleetTable())
	}
	return nil
}
