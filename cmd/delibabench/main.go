// Command delibabench regenerates every table and figure of the DeLiBA-K
// paper's evaluation from the simulation, printing them as plain-text
// tables. Select individual experiments with -only, or run everything.
//
// Usage:
//
//	delibabench [-quick] [-only fig3,fig6,tab2,...]
//
// Experiment ids: fig3 fig4 tab1 fig6 fig7 fig8 fig9 tab2 tab3 power
// realworld headline ablations dfx buckets recovery mtu
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale experiments")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	cfg := experiments.Full()
	if *quick {
		cfg = experiments.Quick()
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if err := run(cfg, sel); err != nil {
		fmt.Fprintln(os.Stderr, "delibabench:", err)
		os.Exit(1)
	}
}

func printTables(tabs ...*metrics.Table) {
	for _, t := range tabs {
		fmt.Println(t)
	}
}

func run(cfg experiments.Config, sel func(string) bool) error {
	if sel("fig3") {
		res, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		printTables(res.Tables()...)
	}
	if sel("fig4") {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		printTables(res.Tables()...)
	}
	if sel("tab1") {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		printTables(experiments.Table1Table(rows))
	}

	var replSweep *experiments.HWSweepResult
	if sel("fig6") || sel("fig7") || sel("headline") {
		var err error
		replSweep, err = experiments.Fig6and7(cfg)
		if err != nil {
			return err
		}
	}
	if sel("fig6") {
		printTables(replSweep.ThroughputTables()...)
	}
	if sel("fig7") {
		printTables(replSweep.IOPSTables()...)
	}
	if sel("fig8") || sel("fig9") {
		ecSweep, err := experiments.Fig8and9(cfg)
		if err != nil {
			return err
		}
		if sel("fig8") {
			printTables(ecSweep.ThroughputTables()...)
		}
		if sel("fig9") {
			printTables(ecSweep.IOPSTables()...)
		}
	}
	if sel("tab2") {
		res, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		printTables(res.Tables()...)
	}
	if sel("tab3") {
		tabs, err := experiments.Table3()
		if err != nil {
			return err
		}
		printTables(tabs...)
	}
	if sel("power") {
		p, err := experiments.Power()
		if err != nil {
			return err
		}
		printTables(p.Table())
	}
	if sel("realworld") {
		olap, err := experiments.OLAP(cfg)
		if err != nil {
			return err
		}
		oltp, err := experiments.OLTP(cfg)
		if err != nil {
			return err
		}
		printTables(olap.Table(), oltp.Table())
	}
	if sel("headline") && replSweep != nil {
		printTables(experiments.Headline(replSweep).Table())
	}
	if sel("ablations") {
		sq, err := experiments.AblationSQPoll(cfg)
		if err != nil {
			return err
		}
		byp, err := experiments.AblationSchedulerBypass(cfg)
		if err != nil {
			return err
		}
		inst, err := experiments.AblationInstances(cfg)
		if err != nil {
			return err
		}
		printTables(sq.Table(), byp.Table(), inst.Table())
	}
	if sel("dfx") {
		res, err := experiments.DFX()
		if err != nil {
			return err
		}
		printTables(res.Table())
	}
	if sel("buckets") {
		rows, err := experiments.BucketQuality()
		if err != nil {
			return err
		}
		printTables(experiments.BucketQualityTable(rows))
	}
	if sel("recovery") {
		res, err := experiments.Recovery(cfg)
		if err != nil {
			return err
		}
		printTables(res.Table())
	}
	if sel("mtu") {
		rows, err := experiments.MTU()
		if err != nil {
			return err
		}
		printTables(experiments.MTUTable(rows))
	}
	return nil
}
