package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// This file is the `dfxtool trace` subcommand: offline inspection of the
// Perfetto trace files delibabench -trace emits.
//
//	dfxtool trace summary  <file>             per-cell sampling + critical path
//	dfxtool trace top      [-n 10] <file>     slowest exemplars across cells
//	dfxtool trace filter   [-cell s] [-trace id] [-o out] <file>
//	dfxtool trace diff     <old> <new>        per-cell critical-path deltas
//	dfxtool trace validate <file>             trace_event schema + summary check

func runTraceCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("trace: need a subcommand: summary, top, filter, diff or validate")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return traceSummary(rest)
	case "top":
		return traceTop(rest)
	case "filter":
		return traceFilter(rest)
	case "diff":
		return traceDiff(rest)
	case "validate":
		return traceValidate(rest)
	default:
		return fmt.Errorf("trace: unknown subcommand %q (want summary, top, filter, diff or validate)", cmd)
	}
}

// readTraceFile opens and decodes one trace file.
func readTraceFile(path string) (*trace.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadFile(f)
}

// pathLine renders a critical path as "name share%, ..." keeping the top n
// rows.
func pathLine(ps []trace.PathShare, n int) string {
	var parts []string
	for i, p := range ps {
		if i == n {
			break
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%%", p.Name, p.Share*100))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ", ")
}

func traceSummary(args []string) error {
	fs := flag.NewFlagSet("trace summary", flag.ContinueOnError)
	n := fs.Int("n", 3, "critical-path rows to show per cell")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace summary: need exactly one file")
	}
	f, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	t := metrics.NewTable("trace summary ("+f.Summary.Schema+")",
		"cell", "ops", "sampled", "spans", "exemplars", "critical path")
	for _, c := range f.Cells {
		t.AddRow(c.Cell, c.Ops, c.Sampled, len(c.Spans), len(c.Exemplars), pathLine(c.CritPath, *n))
	}
	fmt.Println(t)
	return nil
}

func traceTop(args []string) error {
	fs := flag.NewFlagSet("trace top", flag.ContinueOnError)
	n := fs.Int("n", 10, "exemplars to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace top: need exactly one file")
	}
	f, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	type row struct {
		cell string
		ex   trace.Exemplar
	}
	var rows []row
	for _, c := range f.Cells {
		for _, ex := range c.Exemplars {
			rows = append(rows, row{c.Cell, ex})
		}
	}
	// Slowest first; ties break on trace id so output is deterministic.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ex.Dur != rows[j].ex.Dur {
			return rows[i].ex.Dur > rows[j].ex.Dur
		}
		return rows[i].ex.Trace < rows[j].ex.Trace
	})
	if len(rows) > *n {
		rows = rows[:*n]
	}
	t := metrics.NewTable("slowest traced ops",
		"cell", "trace", "latency", "cause", "critical path")
	for _, r := range rows {
		t.AddRow(r.cell, fmt.Sprintf("%016x", r.ex.Trace), r.ex.Dur.String(),
			r.ex.Cause, pathLine(r.ex.Path, 3))
	}
	fmt.Println(t)
	return nil
}

func traceFilter(args []string) error {
	fs := flag.NewFlagSet("trace filter", flag.ContinueOnError)
	cell := fs.String("cell", "", "keep cells whose label contains this substring")
	traceID := fs.String("trace", "", "keep only spans of this 16-hex-digit trace id")
	tenant := fs.Int("tenant", 0, "keep only ops owned by this tenant id (root spans carry the tag)")
	out := fs.String("o", "", "write the filtered trace file here (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace filter: need exactly one file")
	}
	f, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var want uint64
	if *traceID != "" {
		if _, err := fmt.Sscanf(*traceID, "%x", &want); err != nil {
			return fmt.Errorf("trace filter: bad -trace id %q: %w", *traceID, err)
		}
	}
	var kept []*trace.Result
	for _, c := range f.Cells {
		if *cell != "" && !strings.Contains(c.Cell, *cell) {
			continue
		}
		if want != 0 || *tenant != 0 {
			// The tenant tag lives on the op's root span only, so first
			// collect the trace ids the tenant owns, then keep whole trees.
			keep := func(id uint64) bool { return want == 0 || id == want }
			if *tenant != 0 {
				owned := make(map[uint64]bool)
				for _, sp := range c.Spans {
					if sp.Tenant == *tenant {
						owned[sp.Trace] = true
					}
				}
				idOK := keep
				keep = func(id uint64) bool { return idOK(id) && owned[id] }
			}
			fc := &trace.Result{Cell: c.Cell, Ops: c.Ops, Sampled: c.Sampled, CritPath: c.CritPath}
			for _, sp := range c.Spans {
				if keep(sp.Trace) {
					fc.Spans = append(fc.Spans, sp)
				}
			}
			for _, ex := range c.Exemplars {
				if keep(ex.Trace) {
					fc.Exemplars = append(fc.Exemplars, ex)
				}
			}
			if len(fc.Spans) == 0 {
				continue
			}
			c = fc
		}
		kept = append(kept, c)
	}
	if len(kept) == 0 {
		return fmt.Errorf("trace filter: no cells match")
	}
	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if err := trace.WriteFile(w, kept); err != nil {
		return err
	}
	if *out != "" {
		var spans int
		for _, c := range kept {
			spans += len(c.Spans)
		}
		fmt.Printf("dfxtool: wrote %s (%d cells, %d spans)\n", *out, len(kept), spans)
	}
	return nil
}

func traceDiff(args []string) error {
	fs := flag.NewFlagSet("trace diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("trace diff: need exactly two files (old new)")
	}
	oldF, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newF, err := readTraceFile(fs.Arg(1))
	if err != nil {
		return err
	}
	oldCells := map[string]*trace.Result{}
	for _, c := range oldF.Cells {
		oldCells[c.Cell] = c
	}
	t := metrics.NewTable("critical-path diff (old -> new)",
		"cell", "stage", "old share", "new share", "delta")
	for _, nc := range newF.Cells {
		oc, ok := oldCells[nc.Cell]
		if !ok {
			t.AddRow(nc.Cell, "(cell only in new file)", "-", "-", "-")
			continue
		}
		oldShare := map[string]float64{}
		for _, ps := range oc.CritPath {
			oldShare[ps.Name] = ps.Share
		}
		seen := map[string]bool{}
		for _, ps := range nc.CritPath {
			seen[ps.Name] = true
			t.AddRow(nc.Cell, ps.Name,
				fmt.Sprintf("%.1f%%", oldShare[ps.Name]*100),
				fmt.Sprintf("%.1f%%", ps.Share*100),
				fmt.Sprintf("%+.1f%%", (ps.Share-oldShare[ps.Name])*100))
		}
		for _, ps := range oc.CritPath {
			if !seen[ps.Name] {
				t.AddRow(nc.Cell, ps.Name,
					fmt.Sprintf("%.1f%%", ps.Share*100), "0.0%",
					fmt.Sprintf("%+.1f%%", -ps.Share*100))
			}
		}
	}
	fmt.Println(t)
	return nil
}

func traceValidate(args []string) error {
	fs := flag.NewFlagSet("trace validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace validate: need exactly one file")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.ValidateTraceEvents(f); err != nil {
		return err
	}
	tf, err := readTraceFile(path)
	if err != nil {
		return err
	}
	var spans int
	for _, c := range tf.Cells {
		spans += len(c.Spans)
	}
	fmt.Printf("dfxtool: %s valid (%s, %d cells, %d spans)\n", path, tf.Summary.Schema, len(tf.Cells), spans)
	return nil
}
