// Command dfxtool reports the DFX (Dynamic Function eXchange) configuration
// of the DeLiBA-K FPGA design: the reconfigurable partition in SLR0, its
// three reconfigurable modules, their resource usage, partial-bitstream
// sizes and MCAP load times — the software analogue of Vivado's DFX
// Configuration Analysis plus pr_verify.
//
// The `trace` subcommand inspects the per-I/O span trace files written by
// `delibabench -trace`:
//
//	dfxtool trace summary  <file>           per-cell sampling + critical path
//	dfxtool trace top      [-n 10] <file>   slowest exemplars across cells
//	dfxtool trace filter   [-cell s] [-trace id] [-o out] <file>
//	dfxtool trace diff     <old> <new>      per-cell critical-path deltas
//	dfxtool trace validate <file>           trace_event schema check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/crush"
	"repro/internal/erasure"
	"repro/internal/fpga"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func main() {
	// Argv dispatch for the trace subcommand has to happen before the DFX
	// flags are parsed.
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTraceCmd(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}

	verify := flag.Bool("verify", true, "run pr_verify across all configurations")
	exercise := flag.Bool("exercise", false, "simulate a live RM swap sequence")
	flag.Parse()

	eng := sim.NewEngine()
	m, _, err := crush.BuildCluster(crush.ClusterSpec{Hosts: 2, OSDsPerHost: 16})
	if err != nil {
		fatal(err)
	}
	code, err := erasure.New(4, 2, erasure.VandermondeRS)
	if err != nil {
		fatal(err)
	}
	shell, err := fpga.BuildShell(eng, fpga.ShellConfig{
		Map:  m,
		Rule: m.Rule("replicated_rule"),
		Code: code,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("device: %s (3 SLRs)\n", shell.Dev.Name)
	for _, slr := range shell.Dev.SLRs {
		fmt.Printf("  SLR%d: total %v\n        used  %v\n", slr.ID, slr.Total, slr.Used())
	}
	fmt.Printf("partition: %q in SLR%d, budget %v\n\n",
		shell.RP.Name, shell.RP.SLR, shell.RP.Budget)

	t := metrics.NewTable("DFX Configuration Analysis",
		"RM", "kernel", "LUTs", "LUT %", "FFs", "BRAM", "URAM", "partial BIT", "MCAP load")
	for _, row := range shell.RP.ConfigurationAnalysis() {
		t.AddRow(row.RM, row.Kernel.String(),
			row.Usage.LUTs, fmt.Sprintf("%.2f%%", row.UtilPct["LUT"]),
			row.Usage.Registers, row.Usage.BRAM, row.Usage.URAM,
			fmt.Sprintf("%.1fMB", float64(row.BitBytes)/1e6),
			row.LoadTime.String())
	}
	fmt.Println(t)

	if *verify {
		var configs []fpga.Configuration
		for _, rm := range shell.RP.RMs() {
			configs = append(configs, fpga.Configuration{RP: shell.RP, RM: rm})
		}
		if err := fpga.PrVerify(configs); err != nil {
			fmt.Println("pr_verify: FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("pr_verify: all configurations compatible")
	}

	if *exercise {
		fmt.Println("\nlive swap exercise (static region keeps serving):")
		eng.Spawn("swap", func(p *sim.Proc) {
			for _, k := range []fpga.KernelID{fpga.KUniform, fpga.KList, fpga.KTree} {
				start := p.Now()
				if err := shell.LoadDynKernel(p, k); err != nil {
					fmt.Println("  swap error:", err)
					return
				}
				fmt.Printf("  loaded %-8v in %v (power now %.1f W)\n",
					k, p.Now().Sub(start), shell.Power())
			}
		})
		eng.Run()
		fmt.Printf("reconfigurations: %d, cumulative reconfig time: %v\n",
			shell.RP.Reconfigs(), shell.RP.TotalReconfigTime())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfxtool:", err)
	os.Exit(1)
}
