// Command deliba-fio runs a single fio-style workload against any framework
// stack on the simulated testbed and prints latency and throughput.
//
// Usage:
//
//	deliba-fio -stack deliba-k-hw -rw randwrite -bs 4096 -qd 16 -jobs 3 -ops 2000
//
// Stacks: deliba-k-hw, deliba-2-hw, deliba-1-hw, deliba-k-sw, deliba-2-sw.
// Workloads (-rw): read, write, randread, randwrite, or rw:<readpct>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fio"
)

var stackNames = map[string]core.StackKind{
	"deliba-k-hw": core.StackDKHW,
	"deliba-2-hw": core.StackD2HW,
	"deliba-1-hw": core.StackD1HW,
	"deliba-k-sw": core.StackDKSW,
	"deliba-2-sw": core.StackD2SW,
}

func main() {
	stackName := flag.String("stack", "deliba-k-hw", "framework stack")
	rw := flag.String("rw", "randread", "read|write|randread|randwrite|rw:<readpct>")
	bs := flag.Int("bs", 4096, "block size in bytes")
	bssplit := flag.String("bssplit", "", "mixed sizes, e.g. 4096/70:65536/30 (size/weight)")
	qd := flag.Int("qd", 16, "queue depth per job")
	jobs := flag.Int("jobs", 3, "parallel jobs")
	ops := flag.Int("ops", 2000, "ops per job")
	ramp := flag.Int("ramp", 100, "warm-up ops per job (excluded from stats)")
	ec := flag.Bool("ec", false, "use the erasure-coded pool")
	seed := flag.Uint64("seed", 1, "random seed")
	profile := flag.Bool("profile", false, "print the per-stage latency breakdown (DeLiBA-K stacks)")
	flag.Parse()

	kind, ok := stackNames[*stackName]
	if !ok {
		fmt.Fprintf(os.Stderr, "deliba-fio: unknown stack %q\n", *stackName)
		os.Exit(2)
	}
	readPct, pattern, err := parseRW(*rw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deliba-fio:", err)
		os.Exit(2)
	}

	tb, err := core.NewTestbed(core.DefaultTestbedConfig())
	if err != nil {
		fatal(err)
	}
	if *profile {
		tb.EnableProfiling()
	}
	stack, err := tb.NewStack(kind, *ec)
	if err != nil {
		fatal(err)
	}
	split, err := parseBssplit(*bssplit)
	if err != nil {
		fatal(err)
	}
	res, err := fio.Run(tb.Eng, stack, fio.JobSpec{
		Name:       "cli",
		ReadPct:    readPct,
		Pattern:    pattern,
		BlockSize:  *bs,
		BlockSplit: split,
		QueueDepth: *qd,
		Jobs:       *jobs,
		Ops:        *ops,
		RampOps:    *ramp,
		Seed:       *seed,
	})
	if err != nil {
		fatal(err)
	}
	s := res.Lat.Summarize()
	fmt.Printf("%s %s on %s (ec=%v)\n", res.Spec, "completed", stack.Name(), *ec)
	fmt.Printf("  iops      : %.0f (%.2f kIOPS)\n", res.IOPS(), res.KIOPS())
	fmt.Printf("  bandwidth : %.1f MB/s\n", res.MBps())
	fmt.Printf("  latency   : min=%v mean=%v p50=%v p95=%v p99=%v max=%v\n",
		s.Min, s.Mean, s.Median, s.P95, s.P99, s.Max)
	fmt.Printf("  runtime   : %v (virtual), errors=%d\n", res.Elapsed, res.Errors)
	if *profile && tb.Profile != nil {
		fmt.Println()
		fmt.Println(tb.Profile.Table())
	}
}

// parseBssplit parses "size/weight:size/weight" lists.
func parseBssplit(s string) ([]fio.SizeWeight, error) {
	if s == "" {
		return nil, nil
	}
	var out []fio.SizeWeight
	for _, part := range strings.Split(s, ":") {
		var size, weight int
		if _, err := fmt.Sscanf(part, "%d/%d", &size, &weight); err != nil {
			return nil, fmt.Errorf("bad bssplit entry %q", part)
		}
		out = append(out, fio.SizeWeight{Size: size, Weight: weight})
	}
	return out, nil
}

func parseRW(rw string) (readPct int, pattern core.Pattern, err error) {
	switch rw {
	case "read":
		return 100, core.Seq, nil
	case "write":
		return 0, core.Seq, nil
	case "randread":
		return 100, core.Rand, nil
	case "randwrite":
		return 0, core.Rand, nil
	}
	if strings.HasPrefix(rw, "rw:") {
		pct, err := strconv.Atoi(strings.TrimPrefix(rw, "rw:"))
		if err != nil || pct < 0 || pct > 100 {
			return 0, 0, fmt.Errorf("bad mixed spec %q", rw)
		}
		return pct, core.Rand, nil
	}
	return 0, 0, fmt.Errorf("unknown -rw %q", rw)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deliba-fio:", err)
	os.Exit(1)
}
